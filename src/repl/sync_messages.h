// Wire format of the HA binding-sync channel (DESIGN.md §14).
//
// A primary/standby home-agent pair exchanges five message types over UDP
// port 4434: heartbeats carrying the sender's epoch/role/highest-sent
// sequence number, sequenced binding mutations (the incremental stream),
// cumulative acks, snapshot requests, and full-state snapshots (the
// anti-entropy path that heals loss, reordering, and rejoin-after-crash).
// Same conventions as src/mip/messages.h: fixed-size network-byte-order
// structs with a leading type byte, strict Parse that rejects truncated or
// mistyped input with nullopt.
#ifndef MSN_SRC_REPL_SYNC_MESSAGES_H_
#define MSN_SRC_REPL_SYNC_MESSAGES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/mip/home_agent.h"
#include "src/net/address.h"

namespace msn {

// UDP port of the HA-to-HA sync channel (registration's 434, "one plane up").
inline constexpr uint16_t kHaSyncPort = 4434;

enum class SyncMessageType : uint8_t {
  kHeartbeat = 1,
  kMutation = 2,
  kAck = 3,
  kSnapshotRequest = 4,
  kSnapshot = 5,
};

// First byte of a sync datagram, if it names a known type.
[[nodiscard]] std::optional<SyncMessageType> PeekSyncMessageType(
    const std::vector<uint8_t>& bytes);

// Periodic liveness + progress beacon. `seq` is the sender's highest sent
// mutation sequence number this epoch (0 before the first mutation), which
// lets a standby detect that it missed mutations without waiting for the
// next one to arrive out of order.
struct SyncHeartbeat {
  // [type][epoch u64][role u8][seq u64]
  static constexpr size_t kSize = 18;

  uint64_t epoch = 0;
  HaRole role = HaRole::kPrimary;
  uint64_t seq = 0;

  [[nodiscard]] std::vector<uint8_t> Serialize() const;
  [[nodiscard]] static std::optional<SyncHeartbeat> Parse(const std::vector<uint8_t>& bytes);
  [[nodiscard]] std::string ToString() const;
};

// One binding-table mutation, sequenced within an epoch (seq starts at 1).
struct SyncMutation {
  // [type][epoch u64][seq u64][kind u8][home u32][careof u32][lifetime u16]
  // [identification u64][flags u8]
  static constexpr size_t kSize = 37;
  static constexpr uint8_t kFlagDecapsulatesSelf = 0x01;

  uint64_t epoch = 0;
  uint64_t seq = 0;
  BindingMutation mutation;

  [[nodiscard]] std::vector<uint8_t> Serialize() const;
  [[nodiscard]] static std::optional<SyncMutation> Parse(const std::vector<uint8_t>& bytes);
  [[nodiscard]] std::string ToString() const;
};

// Cumulative ack: every mutation up to and including `seq` in `epoch` has
// been applied (or superseded by a snapshot).
struct SyncAck {
  // [type][epoch u64][seq u64]
  static constexpr size_t kSize = 17;

  uint64_t epoch = 0;
  uint64_t seq = 0;

  [[nodiscard]] std::vector<uint8_t> Serialize() const;
  [[nodiscard]] static std::optional<SyncAck> Parse(const std::vector<uint8_t>& bytes);
};

// A standby asking the primary for a full snapshot (gap detected, or fresh
// rejoin after an outage).
struct SyncSnapshotRequest {
  // [type][epoch u64]
  static constexpr size_t kSize = 9;

  uint64_t epoch = 0;

  [[nodiscard]] std::vector<uint8_t> Serialize() const;
  [[nodiscard]] static std::optional<SyncSnapshotRequest> Parse(
      const std::vector<uint8_t>& bytes);
};

// Full-state anti-entropy: the complete binding table plus identification
// history, stamped with the primary's epoch and highest sent sequence number
// (applying the snapshot makes the receiver current through `seq`).
struct SyncSnapshot {
  // [type][epoch u64][seq u64][binding_count u16][bindings...]
  // [ident_count u16][idents...]; binding entry = [home u32][careof u32]
  // [lifetime u16][identification u64][flags u8], ident entry =
  // [home u32][identification u64].
  static constexpr size_t kMinSize = 21;
  static constexpr size_t kBindingEntrySize = 19;
  static constexpr size_t kIdentEntrySize = 12;

  uint64_t epoch = 0;
  uint64_t seq = 0;
  HaBindingState state;

  [[nodiscard]] std::vector<uint8_t> Serialize() const;
  [[nodiscard]] static std::optional<SyncSnapshot> Parse(const std::vector<uint8_t>& bytes);
  [[nodiscard]] std::string ToString() const;
};

}  // namespace msn

#endif  // MSN_SRC_REPL_SYNC_MESSAGES_H_
