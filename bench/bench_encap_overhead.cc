// Ablation A2: the cost of IP-in-IP encapsulation (paper §3.2:
// "Encapsulation adds 20 bytes or more to the packet length and requires
// extra processing").
//
// Part 1 (google-benchmark): per-operation CPU cost of checksums, header
// serialization/parsing, and encapsulation/decapsulation in this library.
// Skipped under MSN_BENCH_SMOKE (wall-clock timing is meaningless on shared
// CI runners).
// Part 2 (scenario table, printed after the micro benchmarks): goodput over
// the 35 kb/s radio link with and without the 20-byte tunnel header for a
// range of payload sizes — the overhead matters most exactly where the paper
// deployed the tunnel: on slow wireless links with small packets.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/link/link_device.h"
#include "src/mip/ipip.h"
#include "src/net/checksum.h"
#include "src/net/headers.h"
#include "src/sim/simulator.h"
#include "src/telemetry/export.h"

namespace msn {
namespace {

std::vector<uint8_t> MakePayload(size_t n) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<uint8_t>(i * 31);
  }
  return v;
}

void BM_InternetChecksum(benchmark::State& state) {
  const auto payload = MakePayload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeInternetChecksum(payload));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(64)->Arg(512)->Arg(1500);

void BM_Ipv4HeaderSerialize(benchmark::State& state) {
  Ipv4Header h;
  h.src = Ipv4Address(36, 135, 0, 10);
  h.dst = Ipv4Address(36, 8, 0, 20);
  h.total_length = 1500;
  for (auto _ : state) {
    ByteWriter w(Ipv4Header::kSize);
    h.Serialize(w);
    benchmark::DoNotOptimize(w.data());
  }
}
BENCHMARK(BM_Ipv4HeaderSerialize);

void BM_Ipv4DatagramParse(benchmark::State& state) {
  Ipv4Header h;
  h.protocol = IpProto::kUdp;
  const auto bytes = BuildIpv4Datagram(h, MakePayload(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ipv4Datagram::Parse(bytes));
  }
}
BENCHMARK(BM_Ipv4DatagramParse)->Arg(64)->Arg(512)->Arg(1500);

void BM_Encapsulate(benchmark::State& state) {
  Ipv4Datagram inner;
  inner.header.protocol = IpProto::kUdp;
  inner.payload = MakePayload(static_cast<size_t>(state.range(0)));
  const Ipv4Address src(36, 8, 0, 50), dst(36, 135, 0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncapsulateIpIp(inner, src, dst));
  }
}
BENCHMARK(BM_Encapsulate)->Arg(64)->Arg(512)->Arg(1500);

void BM_Decapsulate(benchmark::State& state) {
  Ipv4Datagram inner;
  inner.header.protocol = IpProto::kUdp;
  inner.payload = MakePayload(static_cast<size_t>(state.range(0)));
  const auto outer = EncapsulateIpIp(inner, Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecapsulateIpIp(outer.payload));
  }
}
BENCHMARK(BM_Decapsulate)->Arg(64)->Arg(512)->Arg(1500);

// Scenario: goodput over the radio with/without the tunnel header.
double MeasureRadioGoodput(size_t payload_bytes, bool encapsulated, uint64_t seed,
                           int packets) {
  Simulator sim(seed);
  MediumParams params = RadioMediumParams();
  params.drop_probability = 0.0;
  BroadcastMedium cell(sim, "cell", params);
  StripRadioDevice tx(sim, "tx", MacAddress::FromId(1));
  StripRadioDevice rx(sim, "rx", MacAddress::FromId(2));
  tx.AttachTo(&cell);
  rx.AttachTo(&cell);
  tx.ForceUp();
  rx.ForceUp();
  tx.set_queue_capacity(100000);

  uint64_t payload_received = 0;
  rx.SetReceiveHandler([&](NetDevice&, const EthernetFrame& frame) {
    auto dg = Ipv4Datagram::Parse(frame.payload);
    if (!dg) {
      return;
    }
    if (encapsulated) {
      auto inner = DecapsulateIpIp(dg->payload);
      if (inner) {
        payload_received += inner->payload.size();
      }
    } else {
      payload_received += dg->payload.size();
    }
  });

  Ipv4Datagram inner;
  inner.header.protocol = IpProto::kUdp;
  inner.header.src = Ipv4Address(1, 1, 1, 1);
  inner.header.dst = Ipv4Address(2, 2, 2, 2);
  inner.payload = MakePayload(payload_bytes);

  for (int i = 0; i < packets; ++i) {
    EthernetFrame frame;
    frame.src = tx.mac();
    frame.dst = rx.mac();
    frame.ethertype = EtherType::kIpv4;
    if (encapsulated) {
      frame.payload =
          EncapsulateIpIp(inner, Ipv4Address(3, 3, 3, 3), Ipv4Address(4, 4, 4, 4)).Serialize();
    } else {
      frame.payload = inner.Serialize();
    }
    tx.Transmit(frame);
  }
  const Time start = sim.Now();
  sim.Run();
  const double secs = (sim.Now() - start).ToSecondsF();
  return secs > 0 ? static_cast<double>(payload_received) * 8.0 / secs : 0;
}

void PrintGoodputTable() {
  const int kPackets = BenchIterations(200, 50);

  BenchReport report("encap_overhead",
                     "A2: IP-in-IP tunnel-header cost on the 35 kb/s radio link");
  report.set_seed(1);
  report.AddParam("packets_per_run", kPackets);
  report.AddParam("micro_benchmarks_run", !BenchSmokeMode());

  std::printf("\n==============================================================\n");
  std::printf("A2 scenario: goodput over the 35 kb/s radio, with vs without\n");
  std::printf("the 20-byte IP-in-IP tunnel header (%d packets each)\n", kPackets);
  std::printf("==============================================================\n\n");
  std::printf("%10s  %14s  %14s  %10s\n", "payload B", "plain kb/s", "tunneled kb/s",
              "overhead");
  for (size_t payload : {16u, 64u, 256u, 1024u}) {
    const double plain = MeasureRadioGoodput(payload, false, 1, kPackets) / 1000.0;
    const double tunneled = MeasureRadioGoodput(payload, true, 1, kPackets) / 1000.0;
    const double overhead_pct = plain > 0 ? (plain - tunneled) / plain * 100.0 : 0.0;
    std::printf("%10zu  %14.2f  %14.2f  %9.1f%%\n", payload, plain, tunneled, overhead_pct);
    report.AddRow("payload=" + std::to_string(payload),
                  {{"payload_bytes", static_cast<uint64_t>(payload)},
                   {"plain_kbps", plain},
                   {"tunneled_kbps", tunneled},
                   {"overhead_pct", overhead_pct}});
  }
  std::printf("\nShape check: the fixed 20-byte header costs the most on small\n"
              "packets over slow links — the motivation for the triangle-route\n"
              "optimization, which removes encapsulation entirely (paper S3.2).\n\n");

  const std::string path = report.WriteFile();
  std::printf("report: %s\n", path.empty() ? "WRITE FAILED" : path.c_str());
}

}  // namespace
}  // namespace msn

int main(int argc, char** argv) {
  if (!msn::BenchSmokeMode()) {
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
  }
  msn::PrintGoodputTable();
  return 0;
}
