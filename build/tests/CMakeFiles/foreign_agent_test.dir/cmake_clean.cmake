file(REMOVE_RECURSE
  "CMakeFiles/foreign_agent_test.dir/foreign_agent_test.cc.o"
  "CMakeFiles/foreign_agent_test.dir/foreign_agent_test.cc.o.d"
  "foreign_agent_test"
  "foreign_agent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foreign_agent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
