// Unit tests for src/net: addresses, checksums, and wire formats.
#include <gtest/gtest.h>

#include "src/net/address.h"
#include "src/net/checksum.h"
#include "src/net/frame.h"
#include "src/net/headers.h"

namespace msn {
namespace {

// --- Ipv4Address -----------------------------------------------------------------

TEST(AddressTest, ParseAndToString) {
  auto addr = Ipv4Address::Parse("36.135.0.10");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->ToString(), "36.135.0.10");
  EXPECT_EQ(addr->value(), (36u << 24) | (135u << 16) | 10u);
}

TEST(AddressTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Ipv4Address::Parse("").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("256.1.1.1").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.4x").has_value());
}

TEST(AddressTest, Predicates) {
  EXPECT_TRUE(Ipv4Address::Any().IsAny());
  EXPECT_TRUE(Ipv4Address::Broadcast().IsBroadcast());
  EXPECT_TRUE(Ipv4Address::Loopback().IsLoopback());
  EXPECT_TRUE(Ipv4Address(224, 0, 0, 1).IsMulticast());
  EXPECT_FALSE(Ipv4Address(36, 8, 0, 1).IsMulticast());
}

// --- Subnet ---------------------------------------------------------------------------

TEST(SubnetTest, ContainsAndBroadcast) {
  const Subnet net = Subnet::MustParse("36.135.0.0/16");
  EXPECT_TRUE(net.Contains(Ipv4Address(36, 135, 0, 10)));
  EXPECT_TRUE(net.Contains(Ipv4Address(36, 135, 255, 254)));
  EXPECT_FALSE(net.Contains(Ipv4Address(36, 134, 0, 10)));
  EXPECT_EQ(net.BroadcastAddress(), Ipv4Address(36, 135, 255, 255));
  EXPECT_EQ(net.HostAt(10), Ipv4Address(36, 135, 0, 10));
}

TEST(SubnetTest, BaseIsMasked) {
  const Subnet net(Ipv4Address(10, 1, 2, 3), SubnetMask(8));
  EXPECT_EQ(net.base(), Ipv4Address(10, 0, 0, 0));
  EXPECT_EQ(net.ToString(), "10.0.0.0/8");
}

TEST(SubnetTest, DefaultRouteContainsEverything) {
  const Subnet def = Subnet::Default();
  EXPECT_TRUE(def.Contains(Ipv4Address(1, 2, 3, 4)));
  EXPECT_TRUE(def.Contains(Ipv4Address::Broadcast()));
  EXPECT_EQ(def.prefix_len(), 0);
}

TEST(SubnetTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Subnet::Parse("36.135.0.0").has_value());
  EXPECT_FALSE(Subnet::Parse("36.135.0.0/33").has_value());
  EXPECT_FALSE(Subnet::Parse("36.135.0.0/-1").has_value());
  EXPECT_FALSE(Subnet::Parse("x/16").has_value());
  EXPECT_FALSE(Subnet::Parse("36.135.0.0/16extra").has_value());
}

TEST(SubnetMaskTest, MaskValues) {
  EXPECT_EQ(SubnetMask(0).mask_value(), 0u);
  EXPECT_EQ(SubnetMask(8).mask_value(), 0xff000000u);
  EXPECT_EQ(SubnetMask(16).mask_value(), 0xffff0000u);
  EXPECT_EQ(SubnetMask(32).mask_value(), 0xffffffffu);
  EXPECT_EQ(SubnetMask(16).ToString(), "255.255.0.0");
}

// --- MacAddress --------------------------------------------------------------------------

TEST(MacAddressTest, FromIdAndToString) {
  const MacAddress mac = MacAddress::FromId(0x2a);
  EXPECT_EQ(mac.ToString(), "02:00:00:00:00:2a");
  EXPECT_FALSE(mac.IsBroadcast());
  EXPECT_FALSE(mac.IsZero());
  EXPECT_TRUE(MacAddress::Broadcast().IsBroadcast());
  EXPECT_TRUE(MacAddress::Zero().IsZero());
}

TEST(MacAddressTest, Ordering) {
  EXPECT_LT(MacAddress::FromId(1), MacAddress::FromId(2));
  EXPECT_EQ(MacAddress::FromId(7), MacAddress::FromId(7));
}

// --- Internet checksum ---------------------------------------------------------------------

TEST(ChecksumTest, Rfc1071Example) {
  // Classic example from RFC 1071 §3.
  const uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(ComputeInternetChecksum(data, sizeof(data)), static_cast<uint16_t>(~0xddf2 & 0xffff));
}

TEST(ChecksumTest, VerifyRoundTrip) {
  std::vector<uint8_t> data = {1, 2, 3, 4, 5, 6};
  const uint16_t sum = ComputeInternetChecksum(data);
  data.push_back(static_cast<uint8_t>(sum >> 8));
  data.push_back(static_cast<uint8_t>(sum & 0xff));
  EXPECT_TRUE(VerifyInternetChecksum(data.data(), data.size()));
  data[0] ^= 0x80;
  EXPECT_FALSE(VerifyInternetChecksum(data.data(), data.size()));
}

TEST(ChecksumTest, OddLengths) {
  const uint8_t data[] = {0xab};
  EXPECT_EQ(ComputeInternetChecksum(data, 1), static_cast<uint16_t>(~0xab00 & 0xffff));
}

TEST(ChecksumTest, IncrementalMatchesOneShot) {
  std::vector<uint8_t> data;
  for (int i = 0; i < 101; ++i) {
    data.push_back(static_cast<uint8_t>(i * 7));
  }
  InternetChecksum inc;
  inc.Add(data.data(), 13);        // Odd split exercises byte pairing.
  inc.Add(data.data() + 13, 50);
  inc.Add(data.data() + 63, 38);
  EXPECT_EQ(inc.Fold(), ComputeInternetChecksum(data));
}

TEST(ChecksumTest, EmptyBufferIsAllOnes) {
  // An empty sum is 0; the transmitted complement is 0xffff.
  EXPECT_EQ(ComputeInternetChecksum(nullptr, 0), 0xffff);
}

TEST(ChecksumTest, OddLengthSplitAcrossAdds) {
  // An odd-length first chunk leaves a pending byte that must pair with the
  // first byte of the next chunk, exactly as if the stream were contiguous.
  const uint8_t data[] = {0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde};
  for (size_t split = 0; split <= sizeof(data); ++split) {
    InternetChecksum cs;
    cs.Add(data, split);
    cs.Add(data + split, sizeof(data) - split);
    EXPECT_EQ(cs.Fold(), ComputeInternetChecksum(data, sizeof(data))) << "split=" << split;
  }
}

TEST(ChecksumTest, CarryFoldingAtFFFF) {
  // Every 16-bit word is 0xffff: the one's-complement sum saturates at 0xffff
  // (negative zero), so the transmitted checksum is 0x0000 regardless of
  // length — the canonical carry-wraparound case.
  for (size_t words : {1u, 2u, 32u, 1000u}) {
    const std::vector<uint8_t> data(words * 2, 0xff);
    EXPECT_EQ(ComputeInternetChecksum(data), 0x0000) << "words=" << words;
  }
  // 0x8000 + 0x8000 + 0x0001 overflows 16 bits; the carry folds back in:
  // 0x10001 -> 0x0002, complement 0xfffd.
  const uint8_t carry[] = {0x80, 0x00, 0x80, 0x00, 0x00, 0x01};
  EXPECT_EQ(ComputeInternetChecksum(carry, sizeof(carry)), 0xfffd);
}

TEST(ChecksumTest, IncrementalUpdateMatchesFullRecompute) {
  // Change each word of a buffer to assorted new values; RFC 1624 must agree
  // with recomputing the sum from scratch every time.
  std::vector<uint8_t> data;
  for (int i = 0; i < 20; ++i) {
    data.push_back(static_cast<uint8_t>(i * 31 + 5));
  }
  const uint16_t original = ComputeInternetChecksum(data);
  for (size_t offset = 0; offset + 1 < data.size(); offset += 2) {
    for (uint16_t new_word : {uint16_t{0x0000}, uint16_t{0xffff}, uint16_t{0x0001},
                              uint16_t{0x8000}, uint16_t{0x1234}}) {
      const auto old_word =
          static_cast<uint16_t>((data[offset] << 8) | data[offset + 1]);
      std::vector<uint8_t> modified = data;
      modified[offset] = static_cast<uint8_t>(new_word >> 8);
      modified[offset + 1] = static_cast<uint8_t>(new_word & 0xff);
      EXPECT_EQ(IncrementalChecksumUpdate(original, old_word, new_word),
                ComputeInternetChecksum(modified))
          << "offset=" << offset << " new_word=" << new_word;
    }
  }
}

TEST(ChecksumTest, IncrementalUpdateHandlesTtlDecrement) {
  // The router use case: decrement the TTL byte inside the ttl|protocol word
  // of a real serialized header and patch the header checksum incrementally;
  // the result must still verify as a whole.
  Ipv4Header h;
  h.src = Ipv4Address(36, 135, 0, 10);
  h.dst = Ipv4Address(36, 8, 0, 50);
  h.total_length = Ipv4Header::kSize;
  for (uint8_t ttl : {uint8_t{64}, uint8_t{2}, uint8_t{255}}) {
    h.ttl = ttl;
    ByteWriter w;
    h.Serialize(w);
    std::vector<uint8_t> bytes = w.Take();
    const auto old_word = static_cast<uint16_t>((bytes[8] << 8) | bytes[9]);
    const auto old_checksum = static_cast<uint16_t>((bytes[10] << 8) | bytes[11]);
    const auto new_word = static_cast<uint16_t>(old_word - 0x0100);  // ttl - 1.
    bytes[8] = static_cast<uint8_t>(new_word >> 8);
    const uint16_t updated = IncrementalChecksumUpdate(old_checksum, old_word, new_word);
    bytes[10] = static_cast<uint8_t>(updated >> 8);
    bytes[11] = static_cast<uint8_t>(updated & 0xff);
    EXPECT_TRUE(VerifyInternetChecksum(bytes.data(), Ipv4Header::kSize)) << "ttl=" << int{ttl};
  }
}

TEST(ChecksumTest, AddU16U32MatchBytes) {
  InternetChecksum a;
  a.AddU16(0x1234);
  a.AddU32(0xdeadbeef);
  const uint8_t bytes[] = {0x12, 0x34, 0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(a.Fold(), ComputeInternetChecksum(bytes, sizeof(bytes)));
}

// --- IPv4 header ------------------------------------------------------------------------------

TEST(Ipv4HeaderTest, SerializeParseRoundTrip) {
  Ipv4Header h;
  h.tos = 0x10;
  h.total_length = 48;
  h.identification = 777;
  h.ttl = 31;
  h.protocol = IpProto::kUdp;
  h.src = Ipv4Address(36, 135, 0, 10);
  h.dst = Ipv4Address(36, 8, 0, 20);

  ByteWriter w;
  h.Serialize(w);
  ASSERT_EQ(w.size(), Ipv4Header::kSize);

  ByteReader r(w.data());
  auto parsed = Ipv4Header::Parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tos, 0x10);
  EXPECT_EQ(parsed->total_length, 48);
  EXPECT_EQ(parsed->identification, 777);
  EXPECT_EQ(parsed->ttl, 31);
  EXPECT_EQ(parsed->protocol, IpProto::kUdp);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->dst, h.dst);
}

TEST(Ipv4HeaderTest, ParseRejectsCorruption) {
  Ipv4Header h;
  h.total_length = 20;
  ByteWriter w;
  h.Serialize(w);
  auto bytes = w.Take();
  // Flip a bit in the TTL: the checksum no longer verifies.
  bytes[8] ^= 0x01;
  ByteReader r(bytes);
  EXPECT_FALSE(Ipv4Header::Parse(r).has_value());
}

TEST(Ipv4HeaderTest, ParseRejectsTruncation) {
  std::vector<uint8_t> short_buf(10, 0);
  ByteReader r(short_buf);
  EXPECT_FALSE(Ipv4Header::Parse(r).has_value());
}

TEST(Ipv4HeaderTest, ParseRejectsWrongVersion) {
  Ipv4Header h;
  ByteWriter w;
  h.Serialize(w);
  auto bytes = w.Take();
  bytes[0] = 0x65;  // Version 6.
  ByteReader r(bytes);
  EXPECT_FALSE(Ipv4Header::Parse(r).has_value());
}

TEST(Ipv4DatagramTest, BuildAndParse) {
  Ipv4Header h;
  h.protocol = IpProto::kIcmp;
  h.src = Ipv4Address(1, 2, 3, 4);
  h.dst = Ipv4Address(5, 6, 7, 8);
  const std::vector<uint8_t> payload = {9, 9, 9};
  auto bytes = BuildIpv4Datagram(h, payload);
  EXPECT_EQ(bytes.size(), Ipv4Header::kSize + 3);

  auto dg = Ipv4Datagram::Parse(bytes);
  ASSERT_TRUE(dg.has_value());
  EXPECT_EQ(dg->header.total_length, 23);
  EXPECT_EQ(dg->payload, payload);
  // Reserialization is stable.
  EXPECT_EQ(dg->Serialize(), bytes);
}

TEST(Ipv4DatagramDeathTest, OversizedPayloadTripsLengthContract) {
  // 70000 bytes cannot be represented in the 16-bit total_length; before the
  // MSN_CHECK this silently truncated and produced a corrupt wire image.
  Ipv4Header h;
  h.src = Ipv4Address(1, 1, 1, 1);
  h.dst = Ipv4Address(2, 2, 2, 2);
  const std::vector<uint8_t> oversized(70000);
  EXPECT_DEATH((void)BuildIpv4Datagram(h, oversized), "truncate total_length");
}

TEST(UdpDeathTest, OversizedPayloadTripsLengthContract) {
  UdpDatagram dg;
  dg.src_port = 1000;
  dg.dst_port = 2000;
  dg.payload.resize(70000);
  EXPECT_DEATH((void)dg.Serialize(Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2)),
               "truncate the length");
}

TEST(Ipv4DatagramTest, ParseRejectsShortTotalLength) {
  Ipv4Header h;
  auto bytes = BuildIpv4Datagram(h, std::vector<uint8_t>(10, 1));
  bytes.resize(25);  // Truncate below total_length.
  EXPECT_FALSE(Ipv4Datagram::Parse(bytes).has_value());
}

// --- UDP ----------------------------------------------------------------------------------------

TEST(UdpTest, RoundTripWithChecksum) {
  const Ipv4Address src(36, 135, 0, 10), dst(36, 8, 0, 20);
  UdpDatagram dg;
  dg.src_port = 1234;
  dg.dst_port = 434;
  dg.payload = {'h', 'e', 'l', 'l', 'o'};
  auto bytes = dg.Serialize(src, dst);
  EXPECT_EQ(bytes.size(), UdpDatagram::kHeaderSize + 5);

  auto parsed = UdpDatagram::Parse(bytes, src, dst);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_port, 1234);
  EXPECT_EQ(parsed->dst_port, 434);
  EXPECT_EQ(parsed->payload, dg.payload);
}

TEST(UdpTest, ChecksumCoversAddresses) {
  const Ipv4Address src(1, 1, 1, 1), dst(2, 2, 2, 2);
  UdpDatagram dg;
  dg.src_port = 1;
  dg.dst_port = 2;
  auto bytes = dg.Serialize(src, dst);
  // Same bytes validated against different addresses must fail (this is what
  // catches mobility code sending with the wrong source address).
  EXPECT_TRUE(UdpDatagram::Parse(bytes, src, dst).has_value());
  EXPECT_FALSE(UdpDatagram::Parse(bytes, Ipv4Address(3, 3, 3, 3), dst).has_value());
}

TEST(UdpTest, CorruptPayloadRejected) {
  const Ipv4Address src(1, 1, 1, 1), dst(2, 2, 2, 2);
  UdpDatagram dg;
  dg.payload = {1, 2, 3, 4};
  auto bytes = dg.Serialize(src, dst);
  bytes.back() ^= 0xff;
  EXPECT_FALSE(UdpDatagram::Parse(bytes, src, dst).has_value());
}

TEST(UdpTest, EmptyPayload) {
  const Ipv4Address src(1, 1, 1, 1), dst(2, 2, 2, 2);
  UdpDatagram dg;
  auto parsed = UdpDatagram::Parse(dg.Serialize(src, dst), src, dst);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->payload.empty());
}

// --- ICMP ----------------------------------------------------------------------------------------

TEST(IcmpTest, EchoRoundTrip) {
  IcmpMessage msg;
  msg.type = IcmpType::kEchoRequest;
  msg.rest = IcmpMessage::MakeEchoRest(42, 7);
  msg.payload = {'p', 'i', 'n', 'g'};
  auto bytes = msg.Serialize();

  auto parsed = IcmpMessage::Parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, IcmpType::kEchoRequest);
  EXPECT_EQ(parsed->echo_id(), 42);
  EXPECT_EQ(parsed->echo_seq(), 7);
  EXPECT_EQ(parsed->payload, msg.payload);
}

TEST(IcmpTest, CorruptionRejected) {
  IcmpMessage msg;
  msg.type = IcmpType::kEchoReply;
  auto bytes = msg.Serialize();
  bytes[4] ^= 1;
  EXPECT_FALSE(IcmpMessage::Parse(bytes).has_value());
}

TEST(IcmpTest, TruncationRejected) {
  const std::vector<uint8_t> bytes = {1, 2, 3};
  EXPECT_FALSE(IcmpMessage::Parse(bytes).has_value());
}

// --- ARP ----------------------------------------------------------------------------------------

TEST(ArpTest, RequestRoundTrip) {
  ArpMessage msg;
  msg.op = ArpOp::kRequest;
  msg.sender_mac = MacAddress::FromId(1);
  msg.sender_ip = Ipv4Address(36, 135, 0, 1);
  msg.target_ip = Ipv4Address(36, 135, 0, 10);
  auto bytes = msg.Serialize();
  EXPECT_EQ(bytes.size(), ArpMessage::kSize);

  auto parsed = ArpMessage::Parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->op, ArpOp::kRequest);
  EXPECT_EQ(parsed->sender_mac, msg.sender_mac);
  EXPECT_EQ(parsed->sender_ip, msg.sender_ip);
  EXPECT_EQ(parsed->target_ip, msg.target_ip);
  EXPECT_NE(parsed->ToString().find("who-has"), std::string::npos);
}

TEST(ArpTest, RejectsBadHardwareType) {
  ArpMessage msg;
  auto bytes = msg.Serialize();
  bytes[1] = 99;  // Hardware type != Ethernet.
  EXPECT_FALSE(ArpMessage::Parse(bytes).has_value());
}

TEST(ArpTest, RejectsBadOp) {
  ArpMessage msg;
  auto bytes = msg.Serialize();
  bytes[7] = 9;  // Invalid op.
  EXPECT_FALSE(ArpMessage::Parse(bytes).has_value());
}

// --- EthernetFrame ---------------------------------------------------------

TEST(FrameTest, WireSizeIncludesOverhead) {
  EthernetFrame frame;
  frame.payload = std::vector<uint8_t>(100, 0);
  EXPECT_EQ(frame.WireSize(), 118u);
}

}  // namespace
}  // namespace msn
