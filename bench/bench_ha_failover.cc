// HA failover benchmark: packet loss and blackout duration across a
// fail-stop crash of the primary home agent, with and without a replica.
//
// Each run boots the testbed with the mobile host registered away on the
// wired foreign subnet while the correspondent streams sequenced UDP probes
// at the home address. At 4 s the (primary) home agent fail-stops and never
// rejoins. Without a replica the tunnel stays dark for the rest of the run;
// with the replicated pair the backup takes over from the mirrored binding
// table and the MH fails over to it, so the blackout is bounded by the
// takeover timeout plus the MH's renewal-escalation window.
//
// Output: a human-readable table plus the unified BENCH_ha_failover.json
// report (one row per cell). Exits non-zero if any with-replica run never
// resumes delivery, or if the no-replica baseline is not measurably worse.
#include <cstdio>
#include <vector>

#include "src/fault/fault_schedule.h"
#include "src/node/udp.h"
#include "src/telemetry/export.h"
#include "src/topo/testbed.h"
#include "src/util/assert.h"
#include "src/util/stats.h"

namespace msn {
namespace {

constexpr Duration kCrashAt = Seconds(4);
constexpr Duration kHorizon = Seconds(30);
constexpr Duration kProbeInterval = Milliseconds(50);

struct Cell {
  bool replica = false;
  int runs = 0;
  int failures = 0;  // Runs where delivery never resumed after the crash.
  RunningStats blackout_ms;
  std::vector<double> blackout_samples_ms;
  RunningStats loss_fraction;
  uint64_t probes_sent = 0;
  uint64_t probes_lost = 0;
  uint64_t failovers = 0;  // MH active-HA switches across all runs.
};

void RunCell(Cell& cell, uint64_t seed, BenchReport* report) {
  TestbedConfig cfg;
  cfg.seed = seed;
  cfg.realistic_delays = false;
  cfg.with_backup_ha = cell.replica;
  cfg.mh_lifetime_sec = 5;
  Testbed tb(cfg);
  tb.StartMobileAtHome();
  tb.StartMobileOnWired(50);
  if (!tb.mobile->registered()) {
    ++cell.failures;
    return;
  }

  // Correspondent streams probes at the home address; the MH records every
  // arrival so the crash-induced delivery gap can be reconstructed exactly.
  std::vector<Time> arrivals;
  UdpSocket sink(tb.mh->stack());
  MSN_CHECK(sink.Bind(6001));
  sink.SetReceiveHandler([&](const std::vector<uint8_t>& data, const UdpSocket::Metadata& meta) {
    (void)data;
    (void)meta;
    arrivals.push_back(tb.sim.Now());
  });
  uint64_t sent = 0;
  UdpSocket source(tb.ch->stack());
  MSN_CHECK(source.Bind(6000));
  PeriodicTask probes(tb.sim, kProbeInterval, [&] {
    ++sent;
    source.SendTo(Testbed::HomeAddress(), 6001, {0xbe, 0xef});
  });
  probes.Start();

  FaultSchedule schedule;
  schedule.HaCrash(kCrashAt, *tb.home_agent);  // Permanent: never rejoins.
  schedule.Arm(tb.sim);

  const Time crash_at = tb.sim.Now() + kCrashAt;
  const Time horizon = tb.sim.Now() + kHorizon;
  tb.RunFor(kHorizon);
  if (report != nullptr) {
    report->AddMetrics(tb.metrics);
  }

  // Blackout: gap between the last delivery before the crash and the first
  // one after it, censored at the horizon when delivery never resumes.
  Time last_before = Time::Zero();
  Time first_after = Time::Zero();
  for (const Time& at : arrivals) {
    if (at < crash_at) {
      last_before = at;
    } else {
      first_after = at;
      break;
    }
  }
  const bool resumed = first_after != Time::Zero();
  const Time dark_from = last_before != Time::Zero() ? last_before : crash_at;
  const double blackout_ms = ((resumed ? first_after : horizon) - dark_from).ToMillisF();

  ++cell.runs;
  cell.blackout_ms.Add(blackout_ms);
  cell.blackout_samples_ms.push_back(blackout_ms);
  cell.probes_sent += sent;
  cell.probes_lost += sent - static_cast<uint64_t>(arrivals.size());
  cell.loss_fraction.Add(
      sent == 0 ? 0.0 : 1.0 - static_cast<double>(arrivals.size()) / static_cast<double>(sent));
  cell.failovers += tb.mobile->counters().failover_count;
  if (cell.replica && !resumed) {
    ++cell.failures;
  }
}

int Main() {
  const int kRunsPerCell = BenchIterations(5, 2);

  BenchReport report("ha_failover",
                     "Probe loss and blackout across a fail-stop HA crash, with/without replica");
  report.set_seed(4000);
  report.AddParam("runs_per_cell", kRunsPerCell);
  report.AddParam("crash_at_ms", kCrashAt.millis());
  report.AddParam("horizon_ms", kHorizon.millis());
  report.AddParam("probe_interval_ms", kProbeInterval.millis());

  Cell cells[2];
  cells[0].replica = false;
  cells[1].replica = true;
  bool metrics_captured = false;
  for (Cell& cell : cells) {
    for (int run = 0; run < kRunsPerCell; ++run) {
      const uint64_t seed = 4000 + (cell.replica ? 100 : 0) + static_cast<uint64_t>(run);
      const bool capture = cell.replica && !metrics_captured;
      metrics_captured = metrics_captured || capture;
      RunCell(cell, seed, capture ? &report : nullptr);
    }
  }

  std::printf("=======================================================================\n");
  std::printf("HA failover: permanent fail-stop crash at %lld ms, %lld ms horizon,\n",
              static_cast<long long>(kCrashAt.millis()),
              static_cast<long long>(kHorizon.millis()));
  std::printf("CH probes the home address every %lld ms; %d runs/cell\n",
              static_cast<long long>(kProbeInterval.millis()), kRunsPerCell);
  std::printf("=======================================================================\n\n");
  std::printf("replica  blackout ms mean (stddev)       max     sent     lost  failovers  fail\n");
  std::printf("-------  -------------------------  --------  -------  -------  ---------  ----\n");
  for (const Cell& cell : cells) {
    std::printf("%7s  %-25s  %8.1f  %7llu  %7llu  %9llu  %4d\n",
                cell.replica ? "yes" : "no", cell.blackout_ms.Summary(1).c_str(),
                cell.blackout_ms.max(), static_cast<unsigned long long>(cell.probes_sent),
                static_cast<unsigned long long>(cell.probes_lost),
                static_cast<unsigned long long>(cell.failovers), cell.failures);
    report.AddRow(cell.replica ? "replica" : "no_replica",
                  {{"replica", cell.replica ? 1 : 0},
                   {"runs", cell.runs},
                   {"failures", cell.failures},
                   {"blackout_ms_mean", cell.blackout_ms.mean()},
                   {"blackout_ms_max", cell.blackout_ms.max()},
                   {"probes_sent", cell.probes_sent},
                   {"probes_lost", cell.probes_lost},
                   {"loss_fraction_mean", cell.loss_fraction.mean()},
                   {"failovers", cell.failovers}});
  }
  report.AddSummary("blackout_ms_no_replica", "ms", cells[0].blackout_samples_ms);
  report.AddSummary("blackout_ms_replica", "ms", cells[1].blackout_samples_ms);

  std::printf(
      "\nShape check: with the replica the blackout is bounded by the backup's\n"
      "takeover timeout plus the MH's renewal-escalation window (a few\n"
      "seconds); without it the tunnel stays dark to the horizon, so the\n"
      "no-replica blackout must be at least 2x the replicated one.\n\n");

  const std::string path = report.WriteFile();
  std::printf("report: %s\n", path.empty() ? "WRITE FAILED" : path.c_str());

  if (cells[1].failures > 0) {
    std::printf("FAIL: %d with-replica run(s) never resumed delivery\n", cells[1].failures);
    return 1;
  }
  if (cells[0].blackout_ms.mean() < 2.0 * cells[1].blackout_ms.mean()) {
    std::printf("FAIL: no-replica baseline (%.1f ms) not measurably worse than replica (%.1f ms)\n",
                cells[0].blackout_ms.mean(), cells[1].blackout_ms.mean());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace msn

int main() { return msn::Main(); }
