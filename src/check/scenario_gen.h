// Scenario synthesis for the deterministic fuzzer (DESIGN.md §13).
//
// A ScenarioSpec is a fully explicit, replayable description of one fuzz run:
// topology knobs, a traffic mix, a movement timeline, and a fault timeline.
// GenerateScenario() derives one from a single 64-bit seed using labeled Rng
// substreams (Rng::Fork(label)), so the topology, movement, traffic, and
// fault draws are decoupled — tweaking the fault model cannot reshuffle the
// generated movement, which keeps corpus seeds meaningful across generator
// changes. Specs serialize to a line-oriented text format (ToString/Parse)
// used by `fuzz_main --replay`, the shrinker's minimized repros, and the
// checked-in regression corpus under tests/corpus/.
#ifndef MSN_SRC_CHECK_SCENARIO_GEN_H_
#define MSN_SRC_CHECK_SCENARIO_GEN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/time.h"
#include "src/topo/scenario.h"

namespace msn {

// Which testbed medium a fault event targets.
enum class FaultMedium {
  kHome,   // net 36.135 (wired home subnet).
  kWired,  // net 36.8 (visited Ethernet; the default correspondent lives here).
  kRadio,  // net 36.134 (Metricom radio).
};
const char* FaultMediumName(FaultMedium medium);

struct FaultEventSpec {
  enum class Kind {
    kBlackout,      // Link blackout on `medium` for `length`.
    kProfile,       // Install a burst-loss/dup/reorder/corrupt profile.
    kClearProfile,  // Remove the profile from `medium`.
    kHaOutage,      // HA drops UDP 434 for `length`; `restart` wipes bindings.
    kHaCrash,       // Fail-stop crash of the primary HA (backup_ha topologies
                    // only); `length` 0 = never rejoins, > 0 = rejoins (wiped,
                    // demoted to standby) after that long.
  };

  Duration at;
  Kind kind = Kind::kBlackout;
  FaultMedium medium = FaultMedium::kWired;
  Duration length;       // kBlackout / kHaOutage / kHaCrash (0 = permanent).
  bool restart = false;  // kHaOutage: daemon restart (bindings wiped).
  // kProfile parameters (Gilbert-Elliott burst loss plus per-frame faults).
  double p_enter_burst = 0.0;
  double p_exit_burst = 1.0;
  double duplicate_probability = 0.0;
  double reorder_probability = 0.0;
  double corrupt_probability = 0.0;

  static const char* KindName(Kind kind);
};

struct MoveEventSpec {
  Duration at;
  MovementScript::Kind kind = MovementScript::Kind::kWiredCold;
  uint32_t host_index = 50;
};

struct TrafficSpec {
  bool probes = true;                           // CH -> home-address UDP echo stream.
  Duration probe_interval = Milliseconds(100);
  bool tcp = false;                             // MH -> CH TCP-lite transfer.
  uint32_t tcp_bytes = 4096;
  bool pings = false;                           // CH pings the home address.
  Duration ping_interval = Milliseconds(700);
  bool probe_triangle = false;                  // MH probes the triangle route once.
  Duration triangle_at = Seconds(10);
};

// Physical-mobility knob (DESIGN.md §15): instead of a scripted move/fault
// timeline, the host roams a corridor of alternating wired/radio cells and
// handoffs emerge from distance-derived link quality. Mobility scenarios
// replace the random movement timeline with a single initial departure and
// carry no scripted faults (the mobility driver owns the injectors).
struct MobilitySpec {
  enum class Model { kWaypoint, kTrace, kGroup };

  bool enabled = false;
  Model model = Model::kWaypoint;
  double speed_mps = 4.0;
  uint32_t cells = 4;  // Base stations along the corridor (alternating media).
  double map_w_m = 600.0;
  double map_h_m = 200.0;
  Duration max_pause = Seconds(2);  // Random-waypoint pause upper bound.

  static const char* ModelName(Model model);
};

// Fleet-overload knob (DESIGN.md §17): a burst of synthetic registration
// clients hammers the home agent — configured with the stanza's shard /
// batch / admission-limit knobs — while the classic scripted run plays out.
// Shed clients back off (denials do not consume their retransmit budget) and
// must all converge once the burst clears, well before the settling window.
// Disabled under mobility and replicated topologies: the load generator
// targets a single stationary primary.
struct OverloadSpec {
  bool enabled = false;
  uint32_t shards = 4;       // HomeAgent::Config::num_shards.
  uint32_t batch_max = 8;    // HomeAgent::Config::batch_max.
  uint32_t queue_limit = 16; // HomeAgent::Config::admission_queue_limit.
  uint32_t clients = 60;     // Synthetic registration clients.
  Duration start = Seconds(4);   // First client send.
  Duration window = Seconds(5);  // Client start times spread over this span.
};

struct ScenarioSpec {
  uint64_t seed = 1;

  // Topology knobs (TestbedConfig).
  bool transit_filter = false;
  bool ha_on_router = true;
  bool external_ch = false;
  // Replicated HA pair with MH failover (DESIGN.md §14); forces
  // ha_on_router = false, and is the only topology where kHaCrash is legal.
  bool backup_ha = false;
  uint16_t lifetime_sec = 10;

  TrafficSpec traffic;
  MobilitySpec mobility;
  OverloadSpec overload;
  std::vector<MoveEventSpec> moves;
  std::vector<FaultEventSpec> faults;
  // Total scripted run length (movement/fault offsets share its origin).
  Duration duration = Seconds(45);

  // The state the mobile host must reach once the timeline goes quiet: true
  // when the last movement event returns home (or there are none — runs boot
  // at home), false when it ends attached to a foreign network.
  [[nodiscard]] bool ExpectsAtHomeTerminal() const;

  // Deterministic line-oriented serialization; Parse() accepts exactly what
  // ToString() emits (plus comments and a bare seed-only file, which means
  // "generate from this seed").
  [[nodiscard]] std::string ToString() const;
  [[nodiscard]] static std::optional<ScenarioSpec> Parse(const std::string& text,
                                                         std::string* error = nullptr);
};

// Synthesizes a random-but-valid scenario from `seed`. Guarantees the fuzzer
// relies on: movement steps are executable in order (hot switches only target
// devices a previous step left up and configured), all fault activity ends
// before a final settling move, and the run tail is long enough for every
// recovery path (renewal, resync, re-registration) to converge on correct
// code. A violated oracle therefore indicates a protocol bug, not an
// impossible scenario.
[[nodiscard]] ScenarioSpec GenerateScenario(uint64_t seed);

// Repairs a spec whose event lists were edited (by the shrinker or by hand):
// drops movement steps that are invalid given the steps before them, re-pairs
// profile events with clears, clamps fault windows to end before the settling
// window, and keeps both timelines sorted. Generator output is a fixed point.
[[nodiscard]] ScenarioSpec NormalizeSpec(const ScenarioSpec& spec);

}  // namespace msn

#endif  // MSN_SRC_CHECK_SCENARIO_GEN_H_
