file(REMOVE_RECURSE
  "CMakeFiles/mip_messages_test.dir/mip_messages_test.cc.o"
  "CMakeFiles/mip_messages_test.dir/mip_messages_test.cc.o.d"
  "mip_messages_test"
  "mip_messages_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip_messages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
