# Empty dependencies file for msn_net.
# This may be replaced when dependencies are built.
