// Deterministic pseudo-random number generation for the simulator.
//
// The whole system draws randomness from one seeded Rng so that every test and
// benchmark run is exactly reproducible. The generator is xoshiro256**, seeded
// through splitmix64 so that small seeds still produce well-mixed state.
#ifndef MSN_SRC_UTIL_RNG_H_
#define MSN_SRC_UTIL_RNG_H_

#include <cstdint>
#include <string_view>

namespace msn {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Uniform random 64-bit value.
  [[nodiscard]] uint64_t NextU64();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] uint64_t UniformInt(uint64_t lo, uint64_t hi);
  [[nodiscard]] int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  [[nodiscard]] double UniformDouble();
  // Uniform double in [lo, hi).
  [[nodiscard]] double UniformDouble(double lo, double hi);

  // True with probability p (clamped to [0, 1]).
  [[nodiscard]] bool Bernoulli(double p);

  // Normal distribution via Box-Muller. A non-positive stddev returns mean.
  [[nodiscard]] double Normal(double mean, double stddev);

  // Normal clamped to be >= floor. Used for latency/overhead draws that must
  // never be negative.
  [[nodiscard]] double NormalAtLeast(double mean, double stddev, double floor);

  // Exponential with the given mean (mean = 1/lambda). Non-positive mean
  // returns 0.
  [[nodiscard]] double Exponential(double mean);

  // Derives an independent child generator; handy for giving each component
  // its own stream while staying deterministic overall. Advances this
  // generator by one draw, so successive Fork() calls differ.
  [[nodiscard]] Rng Fork();

  // Derives an independent child generator keyed by `label` (hash-derived
  // substream) WITHOUT advancing this generator: the same parent state and
  // label always yield the same child, and children under different labels
  // are decoupled from one another. This is what lets a scenario generator
  // draw topology, traffic, and fault randomness from separate streams —
  // adding a draw to one stream cannot reshuffle the others.
  [[nodiscard]] Rng Fork(std::string_view label) const;

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace msn

#endif  // MSN_SRC_UTIL_RNG_H_
