// The home agent (paper §3.1, §3.4).
//
// Runs on a host in the mobile host's home network (often, but not
// necessarily, the router). For each registered away-from-home mobile host it
// keeps a *mobility binding* (care-of address, lifetime, identification) and:
//
//  * intercepts packets for the MH's home address by acting as its ARP proxy
//    and broadcasting a gratuitous ARP to void stale neighbor caches;
//  * installs a route-table override directing those packets to its VIF,
//    which encapsulates them IP-in-IP to the current care-of address;
//  * decapsulates reverse-tunneled packets from the MH and forwards them on
//    to their true destinations;
//  * answers registration requests on UDP port 434, including deregistration
//    when the mobile host returns home.
//
// Registration processing (DESIGN.md §17): the paper's single user-level
// daemon is generalized into a sharded, batched registration server. The
// binding table is split across `num_shards` logical shards keyed by a hash
// of the home address; each shard has its own request queue and daemon
// (per-shard busy window in sim-time), so shards drain independently. A
// shard's daemon dequeues up to `batch_max` requests per pass and amortizes
// the fixed per-pass cost (dequeue, context, reply flush) across the burst;
// a single queued request pays exactly the paper's serial 1.48 ms, keeping
// the calibrated uncontended path identical to the classic daemon. In front
// of the queues sits an admission filter: once a shard's queue depth crosses
// `admission_queue_limit`, new arrivals are denied statelessly
// (kDeniedInsufficientResources, before any authentication or identification
// work), and once queue depth plus the denials already issued this daemon
// pass reach `admission_drop_limit` even the denial is skipped. A
// retransmit of a request that is still queued supersedes the stale copy in
// place instead of growing the queue.
//
// Replication (DESIGN.md §14): a home agent can be deployed as one of a
// primary/standby pair. The primary emits every locally-originated binding
// mutation through a replication sink (consumed by repl::HaReplicationLink),
// and a standby applies the mirrored mutations without serving: it holds the
// binding table but installs no proxy ARP, answers no registrations, and
// tunnels nothing until promoted. Roles carry an epoch so that exactly one
// agent serves a binding at a time — a promotion bumps the epoch, and a stale
// primary hearing a higher epoch steps down.
#ifndef MSN_SRC_MIP_HOME_AGENT_H_
#define MSN_SRC_MIP_HOME_AGENT_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/mip/calibration.h"
#include "src/mip/ipip.h"
#include "src/mip/messages.h"
#include "src/mip/vif.h"
#include "src/node/node.h"
#include "src/node/udp.h"
#include "src/telemetry/metrics.h"
#include "src/util/stats.h"

namespace msn {

// Which side of a replicated pair this agent currently plays. Exactly one
// agent of a pair is primary (serving) per epoch.
enum class HaRole {
  kPrimary,  // Serves registrations, proxy-ARPs, tunnels.
  kStandby,  // Mirrors binding state; serves nothing until promoted.
};

// How an HA outage manifests (FaultSchedule::HaOutage / HaCrash).
enum class HaOutageKind {
  // The registration daemon is unreachable (UDP 434 silently dropped) but
  // keeps its state; tunneling continues.
  kService,
  // The daemon dies and restarts: soft state (bindings, replay history) is
  // wiped at outage begin; recovering mobile hosts go through the
  // identification-resync path unless a replica restores the state first.
  kDaemonRestart,
  // Fail-stop crash of the whole agent: nothing is served and every packet
  // arriving at the dead agent is dropped (and drop-reason counted). RAM is
  // lost, so state is wiped when — if ever — the agent rejoins (EndOutage).
  kFailStop,
};

// One binding-table mutation, as streamed primary -> standby over the sync
// channel (src/repl/). Also the unit a standby applies.
struct BindingMutation {
  enum class Kind : uint8_t {
    kInstall = 1,         // Create or refresh a binding.
    kRemove = 2,          // Deregistration or expiry.
    kIdentification = 3,  // Re-anchor the replay window only.
  };

  Kind kind = Kind::kInstall;
  Ipv4Address home_address;
  Ipv4Address care_of;             // kInstall.
  uint16_t lifetime_sec = 0;       // kInstall: remaining lifetime.
  uint64_t identification = 0;     // Replay-window anchor.
  bool decapsulates_self = true;   // kInstall.
};

// Full agent state for snapshot anti-entropy: the binding table plus the
// per-home identification history.
struct HaBindingState {
  struct Entry {
    Ipv4Address home_address;
    Ipv4Address care_of;
    uint16_t lifetime_sec = 0;  // Remaining, from snapshot time.
    uint64_t identification = 0;
    bool decapsulates_self = true;
  };
  std::vector<Entry> bindings;
  // Sorted by address (std::map iteration order) for determinism.
  std::vector<std::pair<Ipv4Address, uint64_t>> identifications;
};

class HomeAgent {
 public:
  struct Config {
    // The HA's own address on the home subnet.
    Ipv4Address address;
    // Device attached to the home subnet (where proxy ARP happens).
    NetDevice* home_device = nullptr;
    // Home addresses must fall inside this subnet to be served.
    Subnet home_subnet;
    // Upper bound on granted binding lifetimes.
    uint16_t max_lifetime_sec = 600;
    // Extension (paper §5.1): when a binding moves away from a foreign-agent
    // care-of address, tell that FA where the mobile host went so it can
    // forward in-flight tunnel packets instead of dropping them.
    bool notify_previous_foreign_agent = true;
    // Require every registration to carry a valid mobile-home authenticator
    // (paper §5.1: registrations "should be authenticated ... to protect
    // against denial-of-service attacks in the form of malicious fraudulent
    // registrations"). Keys are installed per mobile host via SetAuthKey.
    bool require_authentication = false;
    // Role this agent boots in; a replicated pair starts one primary, one
    // standby. Epochs start at 1.
    HaRole initial_role = HaRole::kPrimary;
    Calibration calibration = Calibration::Default();
    // When given, the agent's accounting lands here under
    // "<metric_prefix>*" (counters, a bindings gauge, a role gauge, and a
    // processing-time histogram); otherwise in a private registry, so
    // counters() behaves identically either way.
    MetricsRegistry* metrics = nullptr;
    // Metric namespace; the backup of a replicated pair uses "ha.backup." so
    // both agents can share one registry.
    std::string metric_prefix = "ha.";
    // Logical shards of the binding table / registration pipeline, keyed by
    // a hash of the home address. Clamped to [1, kMaxShards]. Per-shard
    // accounting lands under "<metric_prefix>shard.<i>.*".
    uint32_t num_shards = 1;
    // Max requests a shard's daemon dequeues per batch pass (>= 1). A batch
    // of one pays the serial ha_processing cost; larger batches pay
    // ha_batch_fixed once plus ha_batch_item per request.
    uint32_t batch_max = 8;
    // Admission control: deny statelessly (kDeniedInsufficientResources,
    // before authentication) once a shard's queue holds this many requests.
    // 0 disables admission control (unbounded queues).
    uint32_t admission_queue_limit = 0;
    // Past this pressure even the denial is skipped (silent drop): pressure
    // is queue depth plus denials already issued since the shard's daemon
    // last ran, so a flood cannot make the agent spend all its time sending
    // denials. 0 derives 2 * admission_queue_limit.
    uint32_t admission_drop_limit = 0;
  };

  static constexpr uint32_t kMaxShards = 64;

  struct Binding {
    Ipv4Address home_address;
    Ipv4Address care_of;
    Time expires;
    uint64_t identification = 0;
    Time registered_at;
    // True when the MH decapsulates itself (co-located care-of, the paper's
    // basic protocol); false when the care-of address is a foreign agent.
    bool decapsulates_self = true;
  };

  // Snapshot of the agent's accounting; the live values are registry-backed
  // counters named "<metric_prefix><field>".
  struct Counters {
    uint64_t requests_received = 0;
    uint64_t registrations_accepted = 0;
    uint64_t registrations_denied = 0;
    uint64_t deregistrations = 0;
    uint64_t packets_tunneled = 0;
    uint64_t reverse_decapsulated = 0;
    uint64_t bindings_expired = 0;
    uint64_t tunnel_drops_no_binding = 0;
    // Requests silently dropped while the agent was in an outage window.
    uint64_t requests_dropped_outage = 0;
    // Requests dropped because this agent is a non-serving standby.
    uint64_t requests_dropped_standby = 0;
    // Requests that arrived at a fail-stop-crashed agent.
    uint64_t requests_dropped_crashed = 0;
    // Tunnel packets (either direction) that arrived at a crashed agent.
    uint64_t tunnel_drops_crashed = 0;
    // Bindings discarded by a daemon restart (BeginOutage(restart=true)) or a
    // fail-stop rejoin.
    uint64_t bindings_wiped = 0;
    // Post-restart registrations denied once with kDeniedIdentificationMismatch
    // to re-anchor the replay window.
    uint64_t resync_denials = 0;
    // Admission control: requests denied statelessly with
    // kDeniedInsufficientResources (queue over admission_queue_limit).
    uint64_t admission_denied = 0;
    // Requests dropped without even a denial (queue over admission_drop_limit).
    uint64_t admission_dropped = 0;
    // Retransmits that superseded a stale queued copy of the same home's
    // request instead of growing the queue.
    uint64_t admission_superseded = 0;
  };

  // Observer for binding changes; `new_care_of` is Any() on removal.
  using BindingObserver = std::function<void(Ipv4Address home_address, Ipv4Address old_care_of,
                                             Ipv4Address new_care_of)>;
  // Sink for locally-originated binding mutations (replication stream).
  using ReplicationSink = std::function<void(const BindingMutation&)>;

  HomeAgent(Node& node, Config config);
  ~HomeAgent();

  HomeAgent(const HomeAgent&) = delete;
  HomeAgent& operator=(const HomeAgent&) = delete;

  // Restricts service to explicitly authorized home addresses. With no calls,
  // any home address inside `home_subnet` is served.
  void AuthorizeMobileHost(Ipv4Address home_address);
  // Installs the shared secret for a mobile host. When a key is present the
  // MH's registrations are always verified (and replies authenticated), even
  // if require_authentication is off.
  void SetAuthKey(Ipv4Address home_address, const MipAuthKey& key);

  // Fault hooks (driven by FaultSchedule::HaOutage / HaCrash). During any
  // outage every UDP 434 request is dropped without a reply — from the MH's
  // point of view the agent is simply unreachable. See HaOutageKind for what
  // else each flavor does. The bool overload keeps the historical meaning:
  // restart_daemon=false -> kService, true -> kDaemonRestart.
  void BeginOutage(HaOutageKind kind);
  void BeginOutage(bool restart_daemon = false);
  void EndOutage();
  bool service_available() const { return service_available_; }
  bool crashed() const { return crashed_; }

  // --- Replication / failover ------------------------------------------------

  HaRole role() const { return role_; }
  uint64_t epoch() const { return epoch_; }
  // Primary and not fail-stopped: the agent that currently owns the bindings.
  bool serving() const { return role_ == HaRole::kPrimary && !crashed_; }

  // Takes over as primary in `epoch`: installs proxy/static ARP and announces
  // a gratuitous ARP for every held binding so home-subnet traffic moves here.
  void Promote(uint64_t epoch);
  // Demotes to standby in `epoch` (>= the current epoch): removes the proxy
  // state but keeps the mirrored bindings.
  void StepDown(uint64_t epoch);

  // Registers the sink that receives every locally-originated mutation
  // (nullptr detaches). Mutations applied *from* the peer are never echoed.
  void SetReplicationSink(ReplicationSink sink);

  // Applies one mutation mirrored from the peer (no sink emission, no reply
  // traffic, no ARP changes unless this agent is serving).
  void ApplyMutation(const BindingMutation& mutation);

  // Full-state anti-entropy: export / replace the binding table and
  // identification history. AdoptState clears any pending resync requirement —
  // the replica's history supersedes the from-scratch identification resync.
  [[nodiscard]] HaBindingState SnapshotState() const;
  void AdoptState(const HaBindingState& state);

  // Packets tunneled by this agent per epoch; the split-brain oracle proves
  // at most one agent tunnels within any given epoch.
  const std::map<uint64_t, uint64_t>& tunneled_by_epoch() const { return tunneled_by_epoch_; }

  [[nodiscard]] bool HasBinding(Ipv4Address home_address) const;
  [[nodiscard]] std::optional<Binding> GetBinding(Ipv4Address home_address) const;
  size_t binding_count() const;
  // Shard introspection for the fuzzer's shard-consistency oracle.
  size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] size_t ShardBindingCount(size_t shard_index) const;
  [[nodiscard]] size_t ShardQueueDepth(size_t shard_index) const;
  // Empty string when every shard invariant holds: each binding lives in the
  // shard its home address hashes to, and each shard's queue index matches
  // its queue exactly.
  [[nodiscard]] std::string ShardConsistencyError() const;
  Counters counters() const;
  const Config& config() const { return config_; }
  Node& node() { return node_; }

  void SetBindingObserver(BindingObserver observer) { observer_ = std::move(observer); }

  // Per-request processing latency (request arrival to reply send), in
  // milliseconds; includes queueing behind other requests. This is the HA
  // component of the paper's Figure 7 (1.48 ms) and the quantity the
  // HA-scalability benchmark sweeps.
  const RunningStats& processing_stats_ms() const { return processing_stats_ms_; }

 private:
  // Registry-backed counters; field names mirror Counters so increment sites
  // read the same as before the telemetry migration.
  struct LiveCounters {
    CounterRef requests_received;
    CounterRef registrations_accepted;
    CounterRef registrations_denied;
    CounterRef deregistrations;
    CounterRef packets_tunneled;
    CounterRef reverse_decapsulated;
    CounterRef bindings_expired;
    CounterRef tunnel_drops_no_binding;
    CounterRef requests_dropped_outage;
    CounterRef requests_dropped_standby;
    CounterRef requests_dropped_crashed;
    CounterRef tunnel_drops_crashed;
    CounterRef bindings_wiped;
    CounterRef resync_denials;
    CounterRef admission_denied;
    CounterRef admission_dropped;
    CounterRef admission_superseded;
  };

  // One queued registration awaiting its shard's daemon. A retransmit for
  // the same home address overwrites this slot in place (supersede).
  struct PendingRequest {
    RegistrationRequest request;
    UdpSocket::Metadata meta;
    Time arrival;
  };

  // One logical shard: its slice of the binding table, its request queue,
  // and its daemon's busy window. std::deque keeps references to queued
  // elements stable across push_back, which the supersede index relies on.
  struct Shard {
    std::map<Ipv4Address, Binding> bindings;
    std::deque<PendingRequest> queue;
    // home address -> queued slot, for retransmit supersede. Entries are
    // erased as their slot is dequeued.
    std::map<Ipv4Address, PendingRequest*> queued_by_home;
    Time busy_until = Time::Zero();
    bool batch_scheduled = false;
    // Denials issued since the shard's daemon last ran a batch. The denial
    // reply budget is per daemon pass: once depth + denials_in_window
    // crosses the drop limit, further arrivals are shed silently.
    uint32_t denials_in_window = 0;
    Gauge* queue_depth_gauge = nullptr;  // "<prefix>shard.<i>.queue_depth"
    Gauge* bindings_gauge = nullptr;     // "<prefix>shard.<i>.bindings"
    CounterRef processed;                // "<prefix>shard.<i>.processed"
    CounterRef batches;                  // "<prefix>shard.<i>.batches"
  };

  [[nodiscard]] size_t ShardIndexOf(Ipv4Address home_address) const;
  Shard& ShardOf(Ipv4Address home_address);
  const Shard& ShardOf(Ipv4Address home_address) const;
  // All bound home addresses, sorted (shard-merged); preserves the classic
  // single-table iteration order for promote/step-down/wipe/snapshot.
  [[nodiscard]] std::vector<Ipv4Address> SortedBoundHomes() const;
  // Drops every queued request (outage, crash, step-down), counting each
  // against `drop_counter`.
  void FlushShardQueues(CounterRef& drop_counter);
  void ScheduleShardBatch(size_t shard_index);
  void RunShardBatch(size_t shard_index);
  void SetGlobalBindingsGauge();

  void OnRegistrationDatagram(const std::vector<uint8_t>& data, const UdpSocket::Metadata& meta);
  void ProcessRequest(const RegistrationRequest& request, const UdpSocket::Metadata& meta,
                      Time reply_at);
  void SendReply(const RegistrationReply& reply, Ipv4Address dst, uint16_t port);
  void InstallBinding(const RegistrationRequest& request, uint16_t granted_lifetime_sec);
  void RemoveBinding(Ipv4Address home_address, bool expired);
  void ScheduleExpiry(Ipv4Address home_address, Time expires);
  void EncapsulateAndTunnel(const Ipv4Header& inner, const Packet& inner_wire);
  [[nodiscard]] std::optional<RouteDecision> RouteOverride(const RouteQuery& query);
  // Proxy/static/gratuitous ARP for one home address (serving side effects).
  void InstallServingArpState(Ipv4Address home_address);
  void RemoveServingArpState(Ipv4Address home_address);
  // Discards bindings and replay history (daemon restart / crash rejoin) and
  // marks every lost home for the one-shot resync denial.
  void WipeSoftState();
  // Forwards to the sink unless the change originated from the peer.
  void EmitMutation(const BindingMutation& mutation);
  void SetRoleGauge();

  Node& node_;
  Config config_;
  std::unique_ptr<UdpSocket> socket_;
  VirtualInterface* vif_ = nullptr;  // Owned by the node.
  std::unique_ptr<IpIpTunnelEndpoint> tunnel_;
  // The binding table, sharded by hash of home address. shards_.size() is
  // fixed at construction, so Shard pointers/references stay valid.
  std::vector<Shard> shards_;
  // Highest identification seen per home address; survives deregistration to
  // reject replays. Kept as one table: it is touched only on the (batched)
  // registration path, never on the per-packet datapath.
  std::map<Ipv4Address, uint64_t> last_identification_;
  std::set<Ipv4Address> authorized_;
  std::map<Ipv4Address, MipAuthKey> auth_keys_;
  BindingObserver observer_;
  ReplicationSink replication_sink_;
  // True while applying peer-originated state; suppresses sink emission so
  // mirrored mutations are never echoed back.
  bool applying_peer_state_ = false;
  std::unique_ptr<MetricsRegistry> owned_metrics_;  // Fallback when unbound.
  LiveCounters counters_;
  Gauge* bindings_gauge_ = nullptr;            // "<prefix>bindings" (all shards)
  Gauge* role_gauge_ = nullptr;                // "<prefix>role" (1 = primary)
  Histogram* processing_histogram_ = nullptr;  // "<prefix>processing_ms"
  Histogram* batch_size_histogram_ = nullptr;  // "<prefix>batch_size"
  // False inside a scheduled outage window; requests are dropped unreplied.
  bool service_available_ = true;
  // True between a fail-stop crash and its rejoin.
  bool crashed_ = false;
  HaRole role_ = HaRole::kPrimary;
  uint64_t epoch_ = 1;
  std::map<uint64_t, uint64_t> tunneled_by_epoch_;
  // Home addresses whose first post-restart registration must be denied once
  // to resynchronize identifications.
  std::set<Ipv4Address> resync_required_;
  RunningStats processing_stats_ms_;
};

}  // namespace msn

#endif  // MSN_SRC_MIP_HOME_AGENT_H_
