#include "src/check/shrink.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace msn {
namespace {

// One entry of the merged event list: a reference into the original spec's
// moves (is_move) or faults vector.
struct EventRef {
  bool is_move = false;
  size_t index = 0;
};

ScenarioSpec BuildCandidate(const ScenarioSpec& original, const std::vector<EventRef>& events) {
  ScenarioSpec spec = original;
  spec.moves.clear();
  spec.faults.clear();
  for (const EventRef& e : events) {
    if (e.is_move) {
      spec.moves.push_back(original.moves[e.index]);
    } else {
      spec.faults.push_back(original.faults[e.index]);
    }
  }
  return NormalizeSpec(spec);
}

}  // namespace

std::string ShrinkResult::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "shrunk %zu events -> %zu in %d run(s), preserving oracle '%s'\n",
                original_events, minimized_events, runs, oracle.c_str());
  return buf;
}

ShrinkResult ShrinkScenario(const ScenarioSpec& failing, const RunOptions& options,
                            int max_runs) {
  ShrinkResult result;
  const ScenarioSpec original = NormalizeSpec(failing);
  result.original_events = original.moves.size() + original.faults.size();

  RunResult base = RunScenario(original, options);
  result.runs = 1;
  if (!base.failed()) {
    result.minimized = original;
    result.minimized_events = result.original_events;
    result.final_report = base.report;
    return result;
  }
  // Preserve the first violated oracle (report order is deterministic);
  // candidates that fail some *other* way are rejected, so shrinking cannot
  // slip onto a different bug.
  result.oracle = base.report.violations.begin()->first;
  result.final_report = base.report;

  auto reproduces = [&](const ScenarioSpec& candidate) {
    RunResult r = RunScenario(candidate, options);
    ++result.runs;
    if (r.report.violations.count(result.oracle) > 0) {
      result.final_report = r.report;
      return true;
    }
    return false;
  };

  std::vector<EventRef> current;
  for (size_t i = 0; i < original.moves.size(); ++i) {
    current.push_back({true, i});
  }
  for (size_t i = 0; i < original.faults.size(); ++i) {
    current.push_back({false, i});
  }

  // ddmin: drop chunks of 1/n of the list while the failure reproduces.
  size_t n = 2;
  ScenarioSpec best = original;
  while (current.size() >= 2 && n <= current.size() && result.runs < max_runs) {
    const size_t chunk = (current.size() + n - 1) / n;
    bool reduced = false;
    for (size_t start = 0; start < current.size() && result.runs < max_runs; start += chunk) {
      std::vector<EventRef> candidate_events;
      candidate_events.reserve(current.size());
      for (size_t i = 0; i < current.size(); ++i) {
        if (i < start || i >= start + chunk) {
          candidate_events.push_back(current[i]);
        }
      }
      const ScenarioSpec candidate = BuildCandidate(original, candidate_events);
      if (reproduces(candidate)) {
        current = std::move(candidate_events);
        best = candidate;
        n = std::max<size_t>(2, n - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= current.size()) {
        break;
      }
      n = std::min(current.size(), n * 2);
    }
  }

  // Traffic simplification: drop components the violation does not need.
  auto try_spec = [&](ScenarioSpec candidate) {
    if (result.runs >= max_runs) {
      return;
    }
    candidate = NormalizeSpec(candidate);
    if (reproduces(candidate)) {
      best = candidate;
    }
  };
  if (best.traffic.tcp) {
    ScenarioSpec c = best;
    c.traffic.tcp = false;
    try_spec(c);
  }
  if (best.traffic.pings) {
    ScenarioSpec c = best;
    c.traffic.pings = false;
    try_spec(c);
  }
  if (best.traffic.probe_triangle) {
    ScenarioSpec c = best;
    c.traffic.probe_triangle = false;
    try_spec(c);
  }
  if (best.traffic.probes) {
    ScenarioSpec c = best;
    c.traffic.probes = false;
    try_spec(c);
  }

  result.minimized = best;
  result.minimized_events = best.moves.size() + best.faults.size();
  return result;
}

}  // namespace msn
