file(REMOVE_RECURSE
  "CMakeFiles/msn_link.dir/link_device.cc.o"
  "CMakeFiles/msn_link.dir/link_device.cc.o.d"
  "CMakeFiles/msn_link.dir/medium.cc.o"
  "CMakeFiles/msn_link.dir/medium.cc.o.d"
  "CMakeFiles/msn_link.dir/net_device.cc.o"
  "CMakeFiles/msn_link.dir/net_device.cc.o.d"
  "libmsn_link.a"
  "libmsn_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msn_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
