// End-to-end integration tests on the Figure 5 testbed.
#include "src/topo/testbed.h"

#include <gtest/gtest.h>

#include "src/node/icmp.h"
#include "src/tracing/probe.h"

namespace msn {
namespace {

TEST(TestbedTest, CorrespondentPingsMobileHostAtHome) {
  Testbed tb;
  tb.StartMobileAtHome();

  Pinger pinger(tb.ch->stack());
  bool got_reply = false;
  pinger.Ping(Testbed::HomeAddress(), Seconds(2), [&](const Pinger::Result& result) {
    got_reply = result.success;
    EXPECT_GT(result.rtt.nanos(), 0);
  });
  tb.RunFor(Seconds(3));
  EXPECT_TRUE(got_reply);
  EXPECT_FALSE(tb.home_agent->HasBinding(Testbed::HomeAddress()));
}

TEST(TestbedTest, RegistrationInstallsBinding) {
  Testbed tb;
  tb.StartMobileAtHome();
  tb.StartMobileOnWired(50);

  ASSERT_TRUE(tb.mobile->registered());
  auto binding = tb.home_agent->GetBinding(Testbed::HomeAddress());
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->care_of, Ipv4Address(36, 8, 0, 50));
}

TEST(TestbedTest, TunneledEchoWhileVisitingWiredNet) {
  Testbed tb;
  tb.StartMobileAtHome();
  tb.StartMobileOnWired(50);

  ProbeEchoServer echo(*tb.mh, 7);
  ProbeSender sender(*tb.ch, ProbeSender::Config{Testbed::HomeAddress(), 7, Milliseconds(50)});
  sender.Start();
  tb.RunFor(Seconds(2));
  sender.Stop();
  tb.RunFor(Seconds(1));

  EXPECT_GT(sender.received(), 30u);
  EXPECT_EQ(sender.TotalLost(), 0u);
  // The forward path went through the home agent's tunnel...
  EXPECT_GT(tb.home_agent->counters().packets_tunneled, 30u);
  // ...and the mobile host decapsulated and reverse-tunneled.
  EXPECT_GT(tb.mobile->counters().packets_decapsulated_in, 30u);
  EXPECT_GT(tb.mobile->counters().packets_tunneled_out, 30u);
}

TEST(TestbedTest, TunneledEchoOverRadio) {
  Testbed tb;
  tb.StartMobileAtHome();
  tb.StartMobileOnWireless(60);

  ProbeEchoServer echo(*tb.mh, 7);
  ProbeSender sender(*tb.ch, ProbeSender::Config{Testbed::HomeAddress(), 7, Milliseconds(250)});
  sender.Start();
  tb.RunFor(Seconds(5));
  sender.Stop();
  tb.RunFor(Seconds(2));

  EXPECT_GT(sender.received(), 15u);
  // Paper: round trip between CH and MH through the radio is 200-250 ms.
  auto rtts = sender.RttsInWindow(Time::Zero(), Time::Max());
  ASSERT_FALSE(rtts.empty());
  double mean_ms = 0;
  for (Duration d : rtts) {
    mean_ms += d.ToMillisF();
  }
  mean_ms /= static_cast<double>(rtts.size());
  EXPECT_GT(mean_ms, 150.0);
  EXPECT_LT(mean_ms, 320.0);
}

TEST(TestbedTest, ReturnHomeDeregisters) {
  Testbed tb;
  tb.StartMobileAtHome();
  tb.StartMobileOnWired(50);
  ASSERT_TRUE(tb.home_agent->HasBinding(Testbed::HomeAddress()));

  // Move the Ethernet cable back to the home segment and re-attach.
  tb.MoveMhEthernetTo(tb.net135.get());
  bool done = false;
  tb.mobile->AttachHome([&](bool ok) { done = ok; });
  tb.RunFor(Seconds(3));

  EXPECT_TRUE(done);
  EXPECT_TRUE(tb.mobile->at_home());
  EXPECT_FALSE(tb.home_agent->HasBinding(Testbed::HomeAddress()));

  // Plain connectivity is restored.
  Pinger pinger(tb.ch->stack());
  bool got_reply = false;
  pinger.Ping(Testbed::HomeAddress(), Seconds(2),
              [&](const Pinger::Result& r) { got_reply = r.success; });
  tb.RunFor(Seconds(3));
  EXPECT_TRUE(got_reply);
}

}  // namespace
}  // namespace msn
