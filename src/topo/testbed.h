// The MosquitoNet testbed (paper Figure 5):
//
//   net 36.135.0.0/16 — wired home subnet of the mobile host;
//   net 36.8.0.0/16   — wired Computer Science Department subnet, visited via
//                       the MH's PCMCIA Ethernet; correspondent host lives
//                       here by default;
//   net 36.134.0.0/16 — Metricom radio subnet, visited via the STRIP driver;
//   campus            — optional extra subnet behind the router, for a
//                       correspondent "elsewhere in the Internet".
//
// A Pentium-90-class router connects the subnets and (by default) hosts the
// home agent; the paper notes the HA may instead be any host on the home
// network, which `ha_on_router = false` reproduces. All calibrated kernel
// delays and device timings are applied here so experiments see the paper's
// timing regime.
#ifndef MSN_SRC_TOPO_TESTBED_H_
#define MSN_SRC_TOPO_TESTBED_H_

#include <memory>

#include "src/dhcp/dhcp.h"
#include "src/link/link_device.h"
#include "src/fault/fault_injector.h"
#include "src/mip/home_agent.h"
#include "src/mip/mobile_host.h"
#include "src/mobility/mobility_driver.h"
#include "src/node/node.h"
#include "src/repl/ha_replication.h"
#include "src/sim/simulator.h"
#include "src/telemetry/metrics.h"

namespace msn {

struct TestbedConfig {
  uint64_t seed = 1;
  // Router refuses to forward transit traffic arriving on foreign subnets
  // (source address not local to the arrival subnet). Breaks the triangle
  // route, as some security-conscious networks did (paper §3.2).
  bool transit_filter = false;
  // Collocate the home agent on the router (the paper's usual setup) or on a
  // separate host in the home network.
  bool ha_on_router = true;
  // Deploy a replicated HA pair (DESIGN.md §14): primary on the HA host at
  // 36.135.0.2, standby on a second host at 36.135.0.3, sync channel between
  // them, and the MH configured to fail over. Forces ha_on_router = false
  // (the pair lives on dedicated home-network hosts).
  bool with_backup_ha = false;
  // Attach the correspondent host behind the campus subnet instead of 36.8.
  bool external_ch = false;
  // Apply calibrated mid-90s kernel processing delays. Disable for unit
  // tests needing exact timing.
  bool realistic_delays = true;
  // Run DHCP servers for the foreign subnets on the router.
  bool with_dhcp = true;
  Calibration calibration = Calibration::Default();
  uint16_t mh_lifetime_sec = 300;
  // HA registration pipeline knobs (DESIGN.md §17), applied to every agent
  // the testbed builds (primary and backup alike). Defaults keep the classic
  // serial single-shard daemon with unbounded queues.
  uint32_t ha_shards = 1;
  uint32_t ha_batch_max = 8;
  uint32_t ha_admission_limit = 0;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);
  Testbed() : Testbed(TestbedConfig{}) {}
  ~Testbed();

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  // --- Canonical addresses ----------------------------------------------------
  static Ipv4Address HomeAddress() { return Ipv4Address(36, 135, 0, 10); }
  static Subnet HomeSubnet() { return Subnet(Ipv4Address(36, 135, 0, 0), SubnetMask(16)); }
  static Ipv4Address RouterOn135() { return Ipv4Address(36, 135, 0, 1); }
  static Ipv4Address RouterOn8() { return Ipv4Address(36, 8, 0, 1); }
  static Ipv4Address RouterOn134() { return Ipv4Address(36, 134, 0, 1); }
  static Ipv4Address RouterOnCampus() { return Ipv4Address(171, 64, 0, 1); }
  static Ipv4Address HaHostAddress() { return Ipv4Address(36, 135, 0, 2); }
  static Ipv4Address BackupHaAddress() { return Ipv4Address(36, 135, 0, 3); }
  static Subnet Net8() { return Subnet(Ipv4Address(36, 8, 0, 0), SubnetMask(16)); }
  static Subnet Net134() { return Subnet(Ipv4Address(36, 134, 0, 0), SubnetMask(16)); }
  static Subnet CampusNet() { return Subnet(Ipv4Address(171, 64, 0, 0), SubnetMask(16)); }

  Ipv4Address ch_address() const { return ch_address_; }
  Ipv4Address home_agent_address() const { return ha_address_; }

  // --- Components ---------------------------------------------------------------
  Simulator sim;
  // Shared registry every testbed component reports into: link media, node
  // IP stacks, device queue gauges, the home agent and the mobile host.
  // Declared before the components so it outlives them all. Benches sample
  // and export it; see src/telemetry/.
  MetricsRegistry metrics;
  std::unique_ptr<BroadcastMedium> net135;
  std::unique_ptr<BroadcastMedium> net8;
  std::unique_ptr<BroadcastMedium> radio134;
  std::unique_ptr<BroadcastMedium> campus;

  std::unique_ptr<Node> router;
  std::unique_ptr<Node> mh;
  std::unique_ptr<Node> ch;
  std::unique_ptr<Node> ha_host;         // Only when !config.ha_on_router.
  std::unique_ptr<Node> backup_ha_host;  // Only when config.with_backup_ha.

  std::unique_ptr<HomeAgent> home_agent;
  // Replicated pair (with_backup_ha): standby agent and the two sync-link
  // halves. The backup reports under "ha.backup.*" / "repl.backup.*".
  std::unique_ptr<HomeAgent> backup_agent;
  std::unique_ptr<HaReplicationLink> repl_primary;
  std::unique_ptr<HaReplicationLink> repl_backup;
  std::unique_ptr<MobileHost> mobile;
  std::unique_ptr<DhcpServer> dhcp_net8;
  std::unique_ptr<DhcpServer> dhcp_net134;

  EthernetDevice* mh_eth = nullptr;
  StripRadioDevice* mh_radio = nullptr;
  EthernetDevice* ch_dev = nullptr;

  const TestbedConfig& config() const { return config_; }

  // Replication-aware views of the HA pair. With no backup configured the
  // single home agent is the serving agent.
  int ServingAgentCount() const;
  // The agent currently serving bindings; falls back to the primary when
  // none is (e.g. mid-failover).
  HomeAgent* ServingAgent();

  // --- Scenario helpers ------------------------------------------------------------

  // Static care-of attachments in the two foreign subnets (host index names
  // the address, e.g. WiredAttachment(50) -> 36.8.0.50).
  MobileHost::Attachment WiredAttachment(uint32_t host_index = 50);
  MobileHost::Attachment WirelessAttachment(uint32_t host_index = 50);

  // Mobility-driver bindings for the two foreign media: the wired cells map
  // onto net8 (mh_eth) and the radio cells onto radio134 (mh_radio). The
  // injector must already be installed on the matching medium; `quality`
  // defaults differ per medium (short-range clean wired cells, longer-range
  // radio cells).
  MobilityDriver::MediumBinding WiredMobilityBinding(FaultInjector* injector,
                                                     uint32_t host_index = 50);
  MobilityDriver::MediumBinding RadioMobilityBinding(FaultInjector* injector,
                                                     uint32_t host_index = 50);

  // Moves the MH's Ethernet cable: detach from its current segment, attach
  // to `medium` (nullptr = unplugged).
  void MoveMhEthernetTo(BroadcastMedium* medium);

  // Boots the MH at home (Ethernet on net135, home address configured,
  // radio down) and runs the simulation until settled.
  void StartMobileAtHome();

  // Boots the MH already visiting net 36.8 with the given care-of address,
  // registered with the HA. Radio stays down.
  void StartMobileOnWired(uint32_t host_index = 50);

  // Boots the MH on the radio subnet, registered. Ethernet stays down.
  void StartMobileOnWireless(uint32_t host_index = 50);

  // Brings the radio up (paying no bring-up cost: setup-time convenience).
  void ForceRadioUp();
  void ForceEthUp();

  void RunFor(Duration d) { sim.RunFor(d); }

 private:
  void BuildMedia();
  void BuildRouter();
  void BuildMobileHost();
  void BuildCorrespondent();
  void InstallTransitFilter();
  static IpStack::DelayParams SlowHostDelays();   // 40 MHz 486.
  static IpStack::DelayParams RouterDelays();     // Pentium 90.

  TestbedConfig config_;
  Ipv4Address ch_address_;
  Ipv4Address ha_address_;
};

}  // namespace msn

#endif  // MSN_SRC_TOPO_TESTBED_H_
