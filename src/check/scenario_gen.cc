#include "src/check/scenario_gen.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <sstream>

#include "src/mip/calibration.h"

namespace msn {
namespace {

// Generated timelines keep this shape: movement and faults play out in an
// active window, every fault clears, and then a final settling move lands in
// quiet network conditions, leaving a long tail for renewals and recovery
// paths to converge. The oracles' terminal checks rely on that ordering (see
// ScenarioSpec::SettlesCleanly logic in oracles.cc).
constexpr Duration kFirstMoveAt = Seconds(2);
constexpr Duration kLastRandomMoveAt = Seconds(26);
constexpr Duration kFaultStartMin = Seconds(3);
constexpr Duration kFaultStartMax = Seconds(22);
constexpr Duration kFaultEndCap = Seconds(29);
constexpr Duration kSettleMoveAt = Seconds(32);
constexpr Duration kTailSlack = Seconds(12);

// Tracks which attach operations are executable, mirroring what
// MobileHost/MovementScript actually do: cold switches bring their own device
// up (and tear the previous one down), hot switches require the target device
// to already be up, and address switches re-register the current attachment.
struct MoveValidity {
  bool away = false;      // Attached to a foreign network.
  bool eth_up = true;     // Boots at home on the Ethernet.
  bool radio_up = false;  // STRIP radio starts down.
  // Device of the most recent foreign attachment (what a cold switch tears
  // down); 0 = none yet, 1 = ethernet, 2 = radio.
  int last_attach_device = 0;

  [[nodiscard]] bool Allows(MovementScript::Kind kind) const {
    switch (kind) {
      case MovementScript::Kind::kGoHome:
        return true;  // AttachHome brings the home device back up itself.
      case MovementScript::Kind::kWiredCold:
      case MovementScript::Kind::kWirelessCold:
        return true;  // ColdSwitchTo pays the bring-up cost itself.
      case MovementScript::Kind::kWiredHot:
        return away && eth_up;
      case MovementScript::Kind::kWirelessHot:
        return away && radio_up;
      case MovementScript::Kind::kAddressSwitch:
        return away;  // Needs a live foreign attachment to derive the subnet.
    }
    return false;
  }

  void Apply(MovementScript::Kind kind) {
    const int target = (kind == MovementScript::Kind::kWirelessCold ||
                        kind == MovementScript::Kind::kWirelessHot)
                           ? 2
                           : 1;
    switch (kind) {
      case MovementScript::Kind::kGoHome:
        away = false;
        eth_up = true;
        return;
      case MovementScript::Kind::kWiredCold:
      case MovementScript::Kind::kWirelessCold: {
        // The cold path tears down the previous attachment's device (or the
        // home device on first departure) unless it is the same device.
        const int old_device = last_attach_device == 0 ? 1 : last_attach_device;
        if (old_device != target) {
          if (old_device == 1) {
            eth_up = false;
          } else {
            radio_up = false;
          }
        }
        (target == 1 ? eth_up : radio_up) = true;
        last_attach_device = target;
        away = true;
        return;
      }
      case MovementScript::Kind::kWiredHot:
      case MovementScript::Kind::kWirelessHot:
        last_attach_device = target;
        away = true;
        return;
      case MovementScript::Kind::kAddressSwitch:
        return;
    }
  }
};

void AppendKv(std::string& out, const char* key, uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %s=%" PRIu64, key, value);
  out += buf;
}

void AppendKvF(std::string& out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %s=%.6g", key, value);
  out += buf;
}

// Splits "key=value" and parses the value as double; returns false (and sets
// `error`) on malformed input or unknown keys (strictness keeps replay files
// honest about typos).
[[nodiscard]] bool ParseKv(const std::string& token, std::map<std::string, double>& kv,
                           std::string* error) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
    if (error != nullptr) {
      *error = "malformed key=value token: " + token;
    }
    return false;
  }
  const std::string key = token.substr(0, eq);
  char* end = nullptr;
  const double value = std::strtod(token.c_str() + eq + 1, &end);
  if (end == nullptr || *end != '\0') {
    if (error != nullptr) {
      *error = "bad numeric value in token: " + token;
    }
    return false;
  }
  kv[key] = value;
  return true;
}

double TakeKv(std::map<std::string, double>& kv, const std::string& key, double fallback) {
  auto it = kv.find(key);
  if (it == kv.end()) {
    return fallback;
  }
  const double v = it->second;
  kv.erase(it);
  return v;
}

[[nodiscard]] std::optional<MovementScript::Kind> MoveKindFromName(const std::string& name) {
  for (MovementScript::Kind kind :
       {MovementScript::Kind::kGoHome, MovementScript::Kind::kWiredCold,
        MovementScript::Kind::kWiredHot, MovementScript::Kind::kWirelessCold,
        MovementScript::Kind::kWirelessHot, MovementScript::Kind::kAddressSwitch}) {
    if (name == MovementScript::KindName(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

[[nodiscard]] std::optional<MobilitySpec::Model> MobilityModelFromName(const std::string& name) {
  for (MobilitySpec::Model model : {MobilitySpec::Model::kWaypoint, MobilitySpec::Model::kTrace,
                                    MobilitySpec::Model::kGroup}) {
    if (name == MobilitySpec::ModelName(model)) {
      return model;
    }
  }
  return std::nullopt;
}

[[nodiscard]] std::optional<FaultMedium> FaultMediumFromName(const std::string& name) {
  for (FaultMedium medium : {FaultMedium::kHome, FaultMedium::kWired, FaultMedium::kRadio}) {
    if (name == FaultMediumName(medium)) {
      return medium;
    }
  }
  return std::nullopt;
}

}  // namespace

const char* FaultMediumName(FaultMedium medium) {
  switch (medium) {
    case FaultMedium::kHome:
      return "home";
    case FaultMedium::kWired:
      return "wired";
    case FaultMedium::kRadio:
      return "radio";
  }
  return "?";
}

const char* MobilitySpec::ModelName(Model model) {
  switch (model) {
    case Model::kWaypoint:
      return "waypoint";
    case Model::kTrace:
      return "trace";
    case Model::kGroup:
      return "group";
  }
  return "?";
}

const char* FaultEventSpec::KindName(Kind kind) {
  switch (kind) {
    case Kind::kBlackout:
      return "blackout";
    case Kind::kProfile:
      return "profile";
    case Kind::kClearProfile:
      return "clear";
    case Kind::kHaOutage:
      return "ha-outage";
    case Kind::kHaCrash:
      return "ha-crash";
  }
  return "?";
}

bool ScenarioSpec::ExpectsAtHomeTerminal() const {
  if (moves.empty()) {
    return true;  // Runs boot at home and nothing moved the host.
  }
  return moves.back().kind == MovementScript::Kind::kGoHome;
}

std::string ScenarioSpec::ToString() const {
  std::string out = "msn-fuzz-scenario-v1\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "seed %" PRIu64 "\n", seed);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "topo transit_filter=%d ha_on_router=%d external_ch=%d backup_ha=%d "
                "lifetime_sec=%u\n",
                transit_filter ? 1 : 0, ha_on_router ? 1 : 0, external_ch ? 1 : 0,
                backup_ha ? 1 : 0, static_cast<unsigned>(lifetime_sec));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "traffic probes=%d probe_interval_ms=%" PRId64 " tcp=%d tcp_bytes=%u pings=%d "
                "ping_interval_ms=%" PRId64 " probe_triangle=%d triangle_at_ms=%" PRId64 "\n",
                traffic.probes ? 1 : 0, traffic.probe_interval.millis(), traffic.tcp ? 1 : 0,
                traffic.tcp_bytes, traffic.pings ? 1 : 0, traffic.ping_interval.millis(),
                traffic.probe_triangle ? 1 : 0, traffic.triangle_at.millis());
  out += buf;
  if (mobility.enabled) {
    out += "mobility ";
    out += MobilitySpec::ModelName(mobility.model);
    AppendKvF(out, "speed_mps", mobility.speed_mps);
    AppendKv(out, "cells", mobility.cells);
    AppendKvF(out, "map_w_m", mobility.map_w_m);
    AppendKvF(out, "map_h_m", mobility.map_h_m);
    AppendKv(out, "pause_ms", static_cast<uint64_t>(mobility.max_pause.millis()));
    out += '\n';
  }
  if (overload.enabled) {
    std::snprintf(buf, sizeof(buf),
                  "overload shards=%u batch_max=%u queue_limit=%u clients=%u "
                  "start_ms=%" PRId64 " window_ms=%" PRId64 "\n",
                  overload.shards, overload.batch_max, overload.queue_limit,
                  overload.clients, overload.start.millis(), overload.window.millis());
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "duration_ms %" PRId64 "\n", duration.millis());
  out += buf;
  for (const MoveEventSpec& m : moves) {
    std::snprintf(buf, sizeof(buf), "move %" PRId64 " %s %u\n", m.at.millis(),
                  MovementScript::KindName(m.kind), m.host_index);
    out += buf;
  }
  for (const FaultEventSpec& f : faults) {
    std::snprintf(buf, sizeof(buf), "fault %" PRId64 " %s", f.at.millis(),
                  FaultEventSpec::KindName(f.kind));
    out += buf;
    if (f.kind != FaultEventSpec::Kind::kHaOutage &&
        f.kind != FaultEventSpec::Kind::kHaCrash) {
      out += ' ';
      out += FaultMediumName(f.medium);
    }
    switch (f.kind) {
      case FaultEventSpec::Kind::kBlackout:
      case FaultEventSpec::Kind::kHaCrash:
        AppendKv(out, "len_ms", static_cast<uint64_t>(f.length.millis()));
        break;
      case FaultEventSpec::Kind::kProfile:
        AppendKvF(out, "p_enter", f.p_enter_burst);
        AppendKvF(out, "p_exit", f.p_exit_burst);
        AppendKvF(out, "dup", f.duplicate_probability);
        AppendKvF(out, "reorder", f.reorder_probability);
        AppendKvF(out, "corrupt", f.corrupt_probability);
        break;
      case FaultEventSpec::Kind::kClearProfile:
        break;
      case FaultEventSpec::Kind::kHaOutage:
        AppendKv(out, "len_ms", static_cast<uint64_t>(f.length.millis()));
        AppendKv(out, "restart", f.restart ? 1 : 0);
        break;
    }
    out += '\n';
  }
  out += "end\n";
  return out;
}

std::optional<ScenarioSpec> ScenarioSpec::Parse(const std::string& text, std::string* error) {
  auto fail = [error](const std::string& msg) -> std::optional<ScenarioSpec> {
    if (error != nullptr) {
      *error = msg;
    }
    return std::nullopt;
  };

  ScenarioSpec spec;
  bool saw_header = false;
  bool saw_seed = false;
  bool saw_body = false;  // Any section beyond the seed line.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    // Strip comments and surrounding whitespace.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) {
      continue;  // Blank/comment line.
    }
    if (!saw_header) {
      if (word != "msn-fuzz-scenario-v1") {
        return fail("missing msn-fuzz-scenario-v1 header");
      }
      saw_header = true;
      continue;
    }
    if (word == "end") {
      break;
    }
    if (word == "seed") {
      uint64_t s = 0;
      if (!(ls >> s)) {
        return fail("bad seed line");
      }
      spec.seed = s;
      saw_seed = true;
      continue;
    }

    saw_body = true;
    std::map<std::string, double> kv;
    if (word == "topo" || word == "traffic") {
      std::string token;
      while (ls >> token) {
        if (!ParseKv(token, kv, error)) {
          return std::nullopt;
        }
      }
      if (word == "topo") {
        spec.transit_filter = TakeKv(kv, "transit_filter", 0) != 0;
        spec.ha_on_router = TakeKv(kv, "ha_on_router", 1) != 0;
        spec.external_ch = TakeKv(kv, "external_ch", 0) != 0;
        spec.backup_ha = TakeKv(kv, "backup_ha", 0) != 0;
        spec.lifetime_sec = static_cast<uint16_t>(TakeKv(kv, "lifetime_sec", 10));
      } else {
        spec.traffic.probes = TakeKv(kv, "probes", 1) != 0;
        spec.traffic.probe_interval =
            Milliseconds(static_cast<int64_t>(TakeKv(kv, "probe_interval_ms", 100)));
        spec.traffic.tcp = TakeKv(kv, "tcp", 0) != 0;
        spec.traffic.tcp_bytes = static_cast<uint32_t>(TakeKv(kv, "tcp_bytes", 4096));
        spec.traffic.pings = TakeKv(kv, "pings", 0) != 0;
        spec.traffic.ping_interval =
            Milliseconds(static_cast<int64_t>(TakeKv(kv, "ping_interval_ms", 700)));
        spec.traffic.probe_triangle = TakeKv(kv, "probe_triangle", 0) != 0;
        spec.traffic.triangle_at =
            Milliseconds(static_cast<int64_t>(TakeKv(kv, "triangle_at_ms", 10000)));
      }
      if (!kv.empty()) {
        return fail("unknown " + word + " key: " + kv.begin()->first);
      }
      continue;
    }
    if (word == "mobility") {
      std::string model_name;
      if (!(ls >> model_name)) {
        return fail("mobility line missing model: " + line);
      }
      const auto model = MobilityModelFromName(model_name);
      if (!model.has_value()) {
        return fail("unknown mobility model: " + model_name);
      }
      std::string token;
      while (ls >> token) {
        if (!ParseKv(token, kv, error)) {
          return std::nullopt;
        }
      }
      spec.mobility.enabled = true;
      spec.mobility.model = *model;
      spec.mobility.speed_mps = TakeKv(kv, "speed_mps", 4);
      spec.mobility.cells = static_cast<uint32_t>(TakeKv(kv, "cells", 4));
      spec.mobility.map_w_m = TakeKv(kv, "map_w_m", 600);
      spec.mobility.map_h_m = TakeKv(kv, "map_h_m", 200);
      spec.mobility.max_pause = Milliseconds(static_cast<int64_t>(TakeKv(kv, "pause_ms", 2000)));
      if (!kv.empty()) {
        return fail("unknown mobility key: " + kv.begin()->first);
      }
      continue;
    }
    if (word == "overload") {
      std::string token;
      while (ls >> token) {
        if (!ParseKv(token, kv, error)) {
          return std::nullopt;
        }
      }
      spec.overload.enabled = true;
      spec.overload.shards = static_cast<uint32_t>(TakeKv(kv, "shards", 4));
      spec.overload.batch_max = static_cast<uint32_t>(TakeKv(kv, "batch_max", 8));
      spec.overload.queue_limit = static_cast<uint32_t>(TakeKv(kv, "queue_limit", 16));
      spec.overload.clients = static_cast<uint32_t>(TakeKv(kv, "clients", 60));
      spec.overload.start = Milliseconds(static_cast<int64_t>(TakeKv(kv, "start_ms", 4000)));
      spec.overload.window = Milliseconds(static_cast<int64_t>(TakeKv(kv, "window_ms", 5000)));
      if (!kv.empty()) {
        return fail("unknown overload key: " + kv.begin()->first);
      }
      continue;
    }
    if (word == "duration_ms") {
      int64_t ms = 0;
      if (!(ls >> ms) || ms <= 0) {
        return fail("bad duration_ms line");
      }
      spec.duration = Milliseconds(ms);
      continue;
    }
    if (word == "move") {
      int64_t at_ms = 0;
      std::string kind_name;
      uint32_t idx = 0;
      if (!(ls >> at_ms >> kind_name >> idx)) {
        return fail("bad move line: " + line);
      }
      const auto kind = MoveKindFromName(kind_name);
      if (!kind.has_value()) {
        return fail("unknown move kind: " + kind_name);
      }
      spec.moves.push_back(MoveEventSpec{Milliseconds(at_ms), *kind, idx});
      continue;
    }
    if (word == "fault") {
      int64_t at_ms = 0;
      std::string kind_name;
      if (!(ls >> at_ms >> kind_name)) {
        return fail("bad fault line: " + line);
      }
      FaultEventSpec f;
      f.at = Milliseconds(at_ms);
      if (kind_name == "blackout") {
        f.kind = FaultEventSpec::Kind::kBlackout;
      } else if (kind_name == "profile") {
        f.kind = FaultEventSpec::Kind::kProfile;
      } else if (kind_name == "clear") {
        f.kind = FaultEventSpec::Kind::kClearProfile;
      } else if (kind_name == "ha-outage") {
        f.kind = FaultEventSpec::Kind::kHaOutage;
      } else if (kind_name == "ha-crash") {
        f.kind = FaultEventSpec::Kind::kHaCrash;
      } else {
        return fail("unknown fault kind: " + kind_name);
      }
      if (f.kind != FaultEventSpec::Kind::kHaOutage &&
          f.kind != FaultEventSpec::Kind::kHaCrash) {
        std::string medium_name;
        if (!(ls >> medium_name)) {
          return fail("fault line missing medium: " + line);
        }
        const auto medium = FaultMediumFromName(medium_name);
        if (!medium.has_value()) {
          return fail("unknown fault medium: " + medium_name);
        }
        f.medium = *medium;
      }
      std::string token;
      while (ls >> token) {
        if (!ParseKv(token, kv, error)) {
          return std::nullopt;
        }
      }
      f.length = Milliseconds(static_cast<int64_t>(TakeKv(kv, "len_ms", 1000)));
      f.restart = TakeKv(kv, "restart", 0) != 0;
      f.p_enter_burst = TakeKv(kv, "p_enter", 0);
      f.p_exit_burst = TakeKv(kv, "p_exit", 1);
      f.duplicate_probability = TakeKv(kv, "dup", 0);
      f.reorder_probability = TakeKv(kv, "reorder", 0);
      f.corrupt_probability = TakeKv(kv, "corrupt", 0);
      if (!kv.empty()) {
        return fail("unknown fault key: " + kv.begin()->first);
      }
      spec.faults.push_back(f);
      continue;
    }
    return fail("unknown directive: " + word);
  }

  if (!saw_header) {
    return fail("empty scenario file");
  }
  if (!saw_seed) {
    return fail("scenario file has no seed line");
  }
  if (!saw_body) {
    // Seed-only file: the scenario is whatever the generator derives.
    return GenerateScenario(spec.seed);
  }
  return NormalizeSpec(spec);
}

ScenarioSpec GenerateScenario(uint64_t seed) {
  Rng root(seed);
  // Labeled substreams: each aspect draws from its own generator, so e.g.
  // enriching the fault model never reshuffles the movement timeline.
  Rng topo_rng = root.Fork("topo");
  Rng move_rng = root.Fork("moves");
  Rng traffic_rng = root.Fork("traffic");
  Rng fault_rng = root.Fork("faults");
  Rng failover_rng = root.Fork("failover");

  ScenarioSpec spec;
  spec.seed = seed;
  spec.transit_filter = topo_rng.Bernoulli(0.25);
  spec.ha_on_router = !topo_rng.Bernoulli(0.25);
  spec.external_ch = topo_rng.Bernoulli(0.25);
  spec.lifetime_sec = static_cast<uint16_t>(topo_rng.UniformInt(uint64_t{5}, uint64_t{20}));
  // Drawn after the knobs above so pre-replication seeds keep their topology.
  spec.backup_ha = topo_rng.Bernoulli(0.35);
  if (spec.backup_ha) {
    spec.ha_on_router = false;  // The HA pair lives on dedicated home hosts.
  }

  // --- Traffic mix ---------------------------------------------------------
  spec.traffic.probes = true;
  spec.traffic.probe_interval =
      Milliseconds(static_cast<int64_t>(traffic_rng.UniformInt(uint64_t{40}, uint64_t{250})));
  spec.traffic.tcp = traffic_rng.Bernoulli(0.6);
  spec.traffic.tcp_bytes =
      static_cast<uint32_t>(traffic_rng.UniformInt(uint64_t{2048}, uint64_t{16384}));
  spec.traffic.pings = traffic_rng.Bernoulli(0.4);
  spec.traffic.ping_interval =
      Milliseconds(static_cast<int64_t>(traffic_rng.UniformInt(uint64_t{500}, uint64_t{1500})));
  spec.traffic.probe_triangle = traffic_rng.Bernoulli(0.4);
  spec.traffic.triangle_at =
      Milliseconds(static_cast<int64_t>(traffic_rng.UniformInt(uint64_t{6000}, uint64_t{24000})));

  // --- Movement timeline ---------------------------------------------------
  MoveValidity state;
  uint32_t current_index = 50;
  auto draw_index = [&move_rng, &current_index] {
    uint32_t idx = static_cast<uint32_t>(move_rng.UniformInt(uint64_t{40}, uint64_t{90}));
    if (idx == current_index) {
      idx = 40 + (idx - 39) % 51;  // Nudge off the current address.
    }
    current_index = idx;
    return idx;
  };

  const int target_moves = static_cast<int>(move_rng.UniformInt(uint64_t{2}, uint64_t{7}));
  Duration t = kFirstMoveAt;
  for (int i = 0; i < target_moves && t <= kLastRandomMoveAt; ++i) {
    // Candidate kinds currently valid; weights favor the interesting ones.
    std::vector<MovementScript::Kind> candidates;
    auto offer = [&candidates, &state](MovementScript::Kind kind, int weight) {
      if (state.Allows(kind)) {
        candidates.insert(candidates.end(), static_cast<size_t>(weight), kind);
      }
    };
    offer(MovementScript::Kind::kWiredCold, 3);
    offer(MovementScript::Kind::kWirelessCold, 2);
    offer(MovementScript::Kind::kAddressSwitch, 3);
    offer(MovementScript::Kind::kWiredHot, 2);
    offer(MovementScript::Kind::kWirelessHot, 2);
    if (i > 0) {
      offer(MovementScript::Kind::kGoHome, 1);
    }
    const MovementScript::Kind kind =
        candidates[move_rng.UniformInt(uint64_t{0}, uint64_t{candidates.size() - 1})];
    spec.moves.push_back(MoveEventSpec{t, kind, draw_index()});
    state.Apply(kind);

    // Mostly well-spaced moves, with occasional tight bursts that overlap an
    // in-flight handoff (the supersede paths).
    if (move_rng.Bernoulli(0.15)) {
      t += Milliseconds(static_cast<int64_t>(move_rng.UniformInt(uint64_t{150}, uint64_t{600})));
    } else {
      t += Milliseconds(static_cast<int64_t>(move_rng.UniformInt(uint64_t{2000}, uint64_t{5000})));
    }
  }

  // Settling move in quiet conditions: every fault has cleared by
  // kFaultEndCap, so this attach must converge — which is what arms the
  // terminal oracles (registration liveness, binding agreement).
  MoveEventSpec settle;
  settle.at = kSettleMoveAt;
  settle.kind = move_rng.Bernoulli(0.35) ? MovementScript::Kind::kGoHome
                                         : MovementScript::Kind::kWiredCold;
  settle.host_index = draw_index();
  spec.moves.push_back(settle);

  spec.duration = kSettleMoveAt + Seconds(spec.lifetime_sec) + kTailSlack;

  // --- Fault timeline ------------------------------------------------------
  const int fault_count = static_cast<int>(fault_rng.UniformInt(uint64_t{0}, uint64_t{5}));
  for (int i = 0; i < fault_count; ++i) {
    FaultEventSpec f;
    f.at = Milliseconds(static_cast<int64_t>(fault_rng.UniformInt(
        uint64_t{kFaultStartMin.millis()}, uint64_t{kFaultStartMax.millis()})));
    const double which = fault_rng.UniformDouble();
    const double medium_pick = fault_rng.UniformDouble();
    f.medium = medium_pick < 0.45   ? FaultMedium::kWired
               : medium_pick < 0.75 ? FaultMedium::kRadio
                                    : FaultMedium::kHome;
    if (which < 0.30) {
      f.kind = FaultEventSpec::Kind::kBlackout;
      f.length = Milliseconds(
          static_cast<int64_t>(fault_rng.UniformInt(uint64_t{500}, uint64_t{6000})));
    } else if (which < 0.65) {
      f.kind = FaultEventSpec::Kind::kProfile;
      f.p_enter_burst = fault_rng.UniformDouble(0.02, 0.20);
      f.p_exit_burst = fault_rng.UniformDouble(0.20, 0.50);
      f.duplicate_probability = fault_rng.Bernoulli(0.5) ? fault_rng.UniformDouble(0.0, 0.05) : 0.0;
      f.reorder_probability = fault_rng.Bernoulli(0.5) ? fault_rng.UniformDouble(0.0, 0.08) : 0.0;
      f.corrupt_probability = fault_rng.Bernoulli(0.4) ? fault_rng.UniformDouble(0.0, 0.03) : 0.0;
      spec.faults.push_back(f);
      // Paired clear; NormalizeSpec keeps the pairing if the shrinker later
      // edits the list.
      FaultEventSpec clear;
      clear.kind = FaultEventSpec::Kind::kClearProfile;
      clear.medium = f.medium;
      clear.at = f.at + Milliseconds(static_cast<int64_t>(
                            fault_rng.UniformInt(uint64_t{2000}, uint64_t{8000})));
      spec.faults.push_back(clear);
      continue;
    } else {
      f.kind = FaultEventSpec::Kind::kHaOutage;
      f.length = Milliseconds(
          static_cast<int64_t>(fault_rng.UniformInt(uint64_t{1000}, uint64_t{8000})));
      f.restart = fault_rng.Bernoulli(0.5);
    }
    spec.faults.push_back(f);
  }

  // --- Failover timeline ---------------------------------------------------
  // Replicated topologies get at most one primary crash: permanent (the
  // backup carries the rest of the run) or with a later rejoin (the primary
  // comes back wiped and resyncs from the replica as a standby). Drawn from
  // its own substream so enabling replication never reshuffled the classic
  // fault draws above.
  if (spec.backup_ha && failover_rng.Bernoulli(0.6)) {
    FaultEventSpec crash;
    crash.kind = FaultEventSpec::Kind::kHaCrash;
    crash.at = Milliseconds(
        static_cast<int64_t>(failover_rng.UniformInt(uint64_t{4000}, uint64_t{18000})));
    if (!failover_rng.Bernoulli(0.4)) {
      crash.length = Milliseconds(
          static_cast<int64_t>(failover_rng.UniformInt(uint64_t{4000}, uint64_t{10000})));
    }
    spec.faults.push_back(crash);
  }

  // --- Physical mobility ---------------------------------------------------
  // A slice of runs swaps the scripted timeline for motion: the host departs
  // once onto the visited wired network, then a mobility model roams it
  // through a corridor of cells and every further handoff is signal-driven.
  // Drawn from its own substream, so pre-mobility aspects of a seed are
  // untouched. All values are quantized so ToString's %.6g is lossless.
  Rng mob_rng = root.Fork("mobility");
  if (mob_rng.Bernoulli(0.30)) {
    MobilitySpec& mob = spec.mobility;
    mob.enabled = true;
    const double which_model = mob_rng.UniformDouble();
    mob.model = which_model < 0.45   ? MobilitySpec::Model::kWaypoint
                : which_model < 0.75 ? MobilitySpec::Model::kTrace
                                     : MobilitySpec::Model::kGroup;
    mob.speed_mps =
        static_cast<double>(mob_rng.UniformInt(uint64_t{20}, uint64_t{180})) / 10.0;
    mob.cells = static_cast<uint32_t>(mob_rng.UniformInt(uint64_t{3}, uint64_t{6}));
    mob.map_w_m = static_cast<double>(mob_rng.UniformInt(uint64_t{400}, uint64_t{900}));
    mob.map_h_m = static_cast<double>(mob_rng.UniformInt(uint64_t{120}, uint64_t{300}));
    mob.max_pause =
        Milliseconds(static_cast<int64_t>(mob_rng.UniformInt(uint64_t{0}, uint64_t{3000})));
    const uint32_t depart_index =
        static_cast<uint32_t>(mob_rng.UniformInt(uint64_t{40}, uint64_t{90}));
    spec.moves = {MoveEventSpec{kFirstMoveAt, MovementScript::Kind::kWiredCold, depart_index}};
    spec.faults.clear();  // The mobility driver owns the fault injectors.
    spec.duration = Seconds(60);
    // The CH must sit outside the cells' media, and the filter/triangle
    // variations assume the scripted timeline.
    spec.external_ch = true;
    spec.transit_filter = false;
    spec.traffic.probe_triangle = false;
  }

  // --- Fleet overload ------------------------------------------------------
  // A slice of classic scripted runs adds a registration-client burst against
  // a sharded, admission-controlled HA (DESIGN.md §17). Its own substream, so
  // pre-overload aspects of every seed are untouched. Skipped under mobility
  // (whose timeline the stanza would fight) and replicated topologies (the
  // fleet targets one stationary primary).
  Rng ovl_rng = root.Fork("overload");
  if (!spec.mobility.enabled && !spec.backup_ha && ovl_rng.Bernoulli(0.25)) {
    OverloadSpec& ovl = spec.overload;
    ovl.enabled = true;
    ovl.shards = static_cast<uint32_t>(ovl_rng.UniformInt(uint64_t{1}, uint64_t{8}));
    ovl.batch_max = static_cast<uint32_t>(ovl_rng.UniformInt(uint64_t{1}, uint64_t{16}));
    ovl.queue_limit = static_cast<uint32_t>(ovl_rng.UniformInt(uint64_t{8}, uint64_t{64}));
    // Enough clients that an above-knee burst can push a shard queue past
    // the admission limit (shedding needs clients * (1 - knee/rate) to reach
    // the limit) before the burst ends.
    ovl.clients = static_cast<uint32_t>(ovl_rng.UniformInt(uint64_t{50}, uint64_t{400}));
    ovl.start = Milliseconds(
        static_cast<int64_t>(ovl_rng.UniformInt(uint64_t{3000}, uint64_t{8000})));
    // Burst span: the offered rate (clients / window) is drawn relative to
    // the drawn pipeline's saturation knee (DESIGN.md §17), so a healthy
    // slice of these bursts genuinely exceeds capacity and exercises the
    // admission shed path, while the rest probe the under-the-knee regime.
    const Calibration cal = Calibration::Default();
    const double batch_s =
        cal.ha_batch_fixed.mean.ToSecondsF() +
        static_cast<double>(ovl.batch_max) * cal.ha_batch_item.mean.ToSecondsF();
    const double knee_per_s = static_cast<double>(ovl.shards * ovl.batch_max) / batch_s;
    const double load_factor = ovl_rng.UniformDouble(0.5, 3.0);
    ovl.window = std::clamp(SecondsF(ovl.clients / (load_factor * knee_per_s)),
                            Milliseconds(20), Seconds(8));
  }

  return NormalizeSpec(spec);
}

ScenarioSpec NormalizeSpec(const ScenarioSpec& spec) {
  ScenarioSpec out = spec;

  // Replicated topologies put the HA pair on dedicated home-network hosts.
  if (out.backup_ha) {
    out.ha_on_router = false;
  }

  // Overload burst: clamped to the generator's ranges, and its whole window
  // (plus the shed clients' capped backoff) must clear well before the
  // settling move so the terminal oracles judge a converged fleet. Mobility
  // and replicated runs drop the stanza entirely.
  if (out.overload.enabled) {
    if (out.mobility.enabled || out.backup_ha) {
      out.overload = OverloadSpec{};
    } else {
      out.overload.shards = std::clamp(out.overload.shards, uint32_t{1}, uint32_t{8});
      out.overload.batch_max = std::clamp(out.overload.batch_max, uint32_t{1}, uint32_t{16});
      out.overload.queue_limit = std::clamp(out.overload.queue_limit, uint32_t{8}, uint32_t{64});
      out.overload.clients = std::clamp(out.overload.clients, uint32_t{1}, uint32_t{500});
      out.overload.start = std::clamp(out.overload.start, kFaultStartMin, Seconds(8));
      out.overload.window = std::clamp(out.overload.window, Milliseconds(20), Seconds(8));
    }
  }

  // Mobility scenarios canonicalize to the shape the generator emits: one
  // initial wired departure, no scripted faults, an external CH, and knobs
  // clamped to the supported ranges — so generator output is a fixed point
  // and hand-edited specs stay runnable.
  if (out.mobility.enabled) {
    out.external_ch = true;
    out.transit_filter = false;
    out.traffic.probe_triangle = false;
    out.faults.clear();
    MoveEventSpec depart;
    depart.at = kFirstMoveAt;
    depart.kind = MovementScript::Kind::kWiredCold;
    for (const MoveEventSpec& m : out.moves) {
      if (m.kind == MovementScript::Kind::kWiredCold) {
        depart.host_index = m.host_index;
        break;
      }
    }
    out.moves = {depart};
    if (out.duration < Seconds(45)) {
      out.duration = Seconds(60);
    }
    out.mobility.speed_mps = std::clamp(out.mobility.speed_mps, 0.5, 30.0);
    out.mobility.cells = std::clamp(out.mobility.cells, uint32_t{2}, uint32_t{8});
    out.mobility.map_w_m = std::clamp(out.mobility.map_w_m, 200.0, 2000.0);
    out.mobility.map_h_m = std::clamp(out.mobility.map_h_m, 50.0, 1000.0);
    if (out.mobility.max_pause < Duration()) {
      out.mobility.max_pause = Duration();
    }
    return out;
  }

  // Movement: sorted, and every step executable given the steps before it.
  std::stable_sort(out.moves.begin(), out.moves.end(),
                   [](const MoveEventSpec& a, const MoveEventSpec& b) { return a.at < b.at; });
  MoveValidity state;
  std::vector<MoveEventSpec> valid_moves;
  valid_moves.reserve(out.moves.size());
  for (const MoveEventSpec& m : out.moves) {
    if (m.at < Duration() || m.at >= out.duration) {
      continue;
    }
    if (!state.Allows(m.kind)) {
      continue;
    }
    state.Apply(m.kind);
    valid_moves.push_back(m);
  }
  out.moves = std::move(valid_moves);

  // Faults: sorted; timed windows clamped to clear before the settling
  // window; profile events re-paired with a clear per medium.
  std::stable_sort(out.faults.begin(), out.faults.end(),
                   [](const FaultEventSpec& a, const FaultEventSpec& b) { return a.at < b.at; });
  const Duration settle_at = out.moves.empty() ? out.duration : out.moves.back().at;
  const Duration fault_end_cap =
      std::min(settle_at - Seconds(2), out.duration - Seconds(15));
  std::vector<FaultEventSpec> valid_faults;
  valid_faults.reserve(out.faults.size());
  bool profile_active[3] = {false, false, false};
  bool saw_crash = false;
  // Margin a permanent crash needs before the cap: backup takeover plus the
  // MH noticing its renewals die and failing over to the backup.
  constexpr Duration kCrashSettleMargin = Seconds(8);
  for (const FaultEventSpec& f : out.faults) {
    FaultEventSpec e = f;
    const size_t m = static_cast<size_t>(e.medium);
    if (e.at < Duration() || e.at > fault_end_cap - Milliseconds(100)) {
      continue;
    }
    switch (e.kind) {
      case FaultEventSpec::Kind::kBlackout:
      case FaultEventSpec::Kind::kHaOutage:
        // A muted-but-alive primary alongside a promoted backup is a real
        // dual-serving window, so replicated topologies model primary loss
        // exclusively as fail-stop crashes.
        if (out.backup_ha && e.kind == FaultEventSpec::Kind::kHaOutage) {
          continue;
        }
        if (e.length < Milliseconds(100)) {
          e.length = Milliseconds(100);
        }
        if (e.at + e.length > fault_end_cap) {
          e.length = fault_end_cap - e.at;
        }
        break;
      case FaultEventSpec::Kind::kHaCrash:
        if (!out.backup_ha || saw_crash) {
          continue;  // Needs a replica to fail over to; one crash per run.
        }
        if (e.length.nanos() > 0) {
          // Crash with rejoin: the rejoin (and its resync) must finish
          // before the settling window, like any timed fault.
          if (e.at + e.length > fault_end_cap) {
            e.length = fault_end_cap - e.at;
          }
        } else if (e.at + kCrashSettleMargin > fault_end_cap) {
          continue;  // Permanent crash too late for failover to settle.
        }
        saw_crash = true;
        break;
      case FaultEventSpec::Kind::kProfile:
        profile_active[m] = true;
        break;
      case FaultEventSpec::Kind::kClearProfile:
        if (!profile_active[m]) {
          continue;  // Clear with no profile to clear.
        }
        profile_active[m] = false;
        break;
    }
    valid_faults.push_back(e);
  }
  // Any profile still active gets its clear back, just before the cap.
  for (size_t m = 0; m < 3; ++m) {
    if (profile_active[m]) {
      FaultEventSpec clear;
      clear.kind = FaultEventSpec::Kind::kClearProfile;
      clear.medium = static_cast<FaultMedium>(m);
      clear.at = fault_end_cap;
      valid_faults.push_back(clear);
    }
  }
  std::stable_sort(valid_faults.begin(), valid_faults.end(),
                   [](const FaultEventSpec& a, const FaultEventSpec& b) { return a.at < b.at; });
  out.faults = std::move(valid_faults);
  return out;
}

}  // namespace msn
