// TCP-lite: a compact reliable byte-stream protocol (IP protocol 6) with
// three-way handshake, cumulative ACKs, go-back-N retransmission with
// exponential backoff, and FIN teardown.
//
// It exists to demonstrate the paper's motivating scenario (§1): long-lived
// connections — remote logins, news readers — survive network hand-offs
// because both endpoints address the mobile host's *home* address throughout;
// segments lost during a switch are simply retransmitted once the new
// care-of address is registered. Neither endpoint's connection state changes.
#ifndef MSN_SRC_TCPLITE_TCPLITE_H_
#define MSN_SRC_TCPLITE_TCPLITE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/net/address.h"
#include "src/net/headers.h"
#include "src/node/ip_stack.h"

namespace msn {

// Segment header (16 bytes) followed by payload. Checksum covers a
// pseudo-header (src, dst, proto, length) plus header and payload.
struct TcpLiteSegment {
  static constexpr size_t kHeaderSize = 16;

  static constexpr uint8_t kFlagSyn = 0x01;
  static constexpr uint8_t kFlagAck = 0x02;
  static constexpr uint8_t kFlagFin = 0x04;
  static constexpr uint8_t kFlagRst = 0x08;

  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint8_t flags = 0;
  uint8_t window_segments = 0;
  std::vector<uint8_t> payload;

  bool syn() const { return (flags & kFlagSyn) != 0; }
  bool has_ack() const { return (flags & kFlagAck) != 0; }
  bool fin() const { return (flags & kFlagFin) != 0; }
  bool rst() const { return (flags & kFlagRst) != 0; }

  [[nodiscard]] std::vector<uint8_t> Serialize(Ipv4Address src_ip, Ipv4Address dst_ip) const;
  [[nodiscard]] static std::optional<TcpLiteSegment> Parse(std::span<const uint8_t> bytes,
                                             Ipv4Address src_ip, Ipv4Address dst_ip);
};

class TcpLite;

class TcpLiteConnection {
 public:
  enum class State {
    kClosed,
    kSynSent,
    kSynReceived,
    kEstablished,
    kFinSent,
  };

  static constexpr size_t kMss = 512;
  static constexpr uint8_t kWindowSegments = 8;
  static constexpr Duration kInitialRto = Milliseconds(500);
  static constexpr Duration kMaxRto = Seconds(8);

  using DataHandler = std::function<void(const std::vector<uint8_t>& data)>;
  using CloseHandler = std::function<void()>;
  using ConnectHandler = std::function<void(bool success)>;

  ~TcpLiteConnection();

  // Queues bytes for reliable delivery.
  void Send(const std::vector<uint8_t>& data);
  // Sends FIN once the send buffer drains.
  void Close();
  // Immediate RST teardown.
  void Abort();

  void SetDataHandler(DataHandler handler) { data_handler_ = std::move(handler); }
  void SetCloseHandler(CloseHandler handler) { close_handler_ = std::move(handler); }

  State state() const { return state_; }
  bool established() const { return state_ == State::kEstablished; }
  Ipv4Address remote_address() const { return remote_addr_; }
  uint16_t remote_port() const { return remote_port_; }
  uint16_t local_port() const { return local_port_; }

  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_acked() const { return bytes_acked_; }
  uint64_t bytes_received() const { return bytes_received_; }
  uint64_t retransmissions() const { return retransmissions_; }
  uint64_t segments_out_of_order() const { return segments_out_of_order_; }

 private:
  friend class TcpLite;

  TcpLiteConnection(TcpLite& tcp, Ipv4Address remote_addr, uint16_t remote_port,
                    uint16_t local_port, Ipv4Address bound_src);

  void StartActiveOpen(ConnectHandler handler);
  void StartPassiveOpen(uint32_t remote_iss);
  void HandleSegment(const TcpLiteSegment& segment);
  void TrySendData();
  void SendSegment(uint8_t flags, uint32_t seq, const std::vector<uint8_t>& payload);
  void SendAck();
  void ArmRto();
  void CancelRto();
  void OnRtoExpired();
  void EnterEstablished(bool from_active_open);
  void EnterClosed(bool notify);

  TcpLite& tcp_;
  Ipv4Address remote_addr_;
  uint16_t remote_port_;
  uint16_t local_port_;
  // Optional pinned source address; Any() = unbound (on a mobile host this
  // means full mobile-IP treatment with the home address as source).
  Ipv4Address bound_src_;

  State state_ = State::kClosed;
  ConnectHandler connect_handler_;
  DataHandler data_handler_;
  CloseHandler close_handler_;

  // Send side (byte sequence space; SYN/FIN each consume one).
  uint32_t iss_ = 0;
  uint32_t snd_una_ = 0;  // Oldest unacknowledged.
  uint32_t snd_nxt_ = 0;  // Next to send.
  std::deque<uint8_t> send_buffer_;  // Bytes at sequence snd_una_... (unacked + unsent).
  size_t unsent_offset_ = 0;         // send_buffer_ index of first unsent byte.
  bool fin_pending_ = false;
  bool fin_sent_ = false;

  // Receive side.
  uint32_t rcv_nxt_ = 0;

  EventId rto_event_;
  Duration current_rto_ = kInitialRto;

  uint64_t bytes_sent_ = 0;
  uint64_t bytes_acked_ = 0;
  uint64_t bytes_received_ = 0;
  uint64_t retransmissions_ = 0;
  uint64_t segments_out_of_order_ = 0;
};

// Per-node TCP-lite instance: demultiplexes protocol-6 datagrams to
// connections and listeners.
class TcpLite {
 public:
  using AcceptHandler = std::function<void(TcpLiteConnection* connection)>;

  explicit TcpLite(IpStack& stack);
  ~TcpLite();

  TcpLite(const TcpLite&) = delete;
  TcpLite& operator=(const TcpLite&) = delete;

  // Passive open: incoming SYNs to `port` create connections handed to
  // `on_accept`. Connections are owned by this TcpLite instance.
  void Listen(uint16_t port, AcceptHandler on_accept);

  // Active open. `bound_src` pins the source address (local role on a mobile
  // host); Any() leaves source selection to routing + mobility policy.
  TcpLiteConnection* Connect(Ipv4Address dst, uint16_t dst_port,
                             TcpLiteConnection::ConnectHandler on_connected,
                             Ipv4Address bound_src = Ipv4Address::Any());

  IpStack& stack() { return stack_; }

  struct Counters {
    uint64_t segments_sent = 0;
    uint64_t segments_received = 0;
    uint64_t bad_segments = 0;
    uint64_t resets_sent = 0;
  };
  const Counters& counters() const { return counters_; }

 private:
  friend class TcpLiteConnection;

  struct ConnKey {
    uint16_t local_port;
    uint32_t remote_addr;
    uint16_t remote_port;
    auto operator<=>(const ConnKey&) const = default;
  };

  void OnDatagram(const Ipv4Header& header, std::span<const uint8_t> payload);
  void Transmit(TcpLiteConnection& conn, const TcpLiteSegment& segment);
  void SendReset(const Ipv4Header& header, const TcpLiteSegment& segment);
  void RemoveConnection(TcpLiteConnection* conn);
  uint16_t AllocatePort();

  IpStack& stack_;
  std::map<ConnKey, std::unique_ptr<TcpLiteConnection>> connections_;
  std::map<uint16_t, AcceptHandler> listeners_;
  Counters counters_;
  uint16_t next_port_ = 40000;
};

}  // namespace msn

#endif  // MSN_SRC_TCPLITE_TCPLITE_H_
