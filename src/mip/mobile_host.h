// The mobile host (paper §3.1–§3.3, §5.2).
//
// Keeps a permanent home address while attaching to foreign networks with
// temporary, co-located care-of addresses — no foreign agent anywhere. It
// carries its own simplified foreign agent: it decapsulates tunneled packets
// through a VIF, registers care-of addresses with its home agent over UDP
// 434 (with retransmission), and routes outgoing "home-role" packets through
// a Mobile Policy Table injected at the stack's single route-lookup hook
// (the paper's modified ip_rt_route()).
//
// The two-roles design (§5.2) falls out of the hook's rules:
//   * source unspecified, or explicitly the home address  -> home role:
//     policy table decides tunnel / triangle / encap-direct / direct;
//   * source bound to any other (local) address           -> local role:
//     the override declines and normal routing applies.
//
// Hand-off entry points map to the paper's experiments:
//   * SwitchCareOfAddress()  — same-subnet address switch (E1, Figure 7);
//   * HotSwitchTo()          — both interfaces up, re-route + re-register;
//   * ColdSwitchTo()         — tear down one interface, bring up the other
//                              (pays the device bring-up latency that
//                              dominates Figure 6's cold-switch losses).
#ifndef MSN_SRC_MIP_MOBILE_HOST_H_
#define MSN_SRC_MIP_MOBILE_HOST_H_

#include <functional>
#include <memory>
#include <optional>

#include "src/mip/calibration.h"
#include "src/mip/ipip.h"
#include "src/mip/messages.h"
#include "src/mip/policy_table.h"
#include "src/mip/vif.h"
#include "src/node/icmp.h"
#include "src/node/node.h"
#include "src/node/udp.h"

namespace msn {

class MobileHost {
 public:
  struct Config {
    Ipv4Address home_address;
    SubnetMask home_mask{16};
    Ipv4Address home_agent;
    // Default router on the home subnet (often the same box as the HA).
    Ipv4Address home_gateway;
    NetDevice* home_device = nullptr;
    // Requested binding lifetime.
    uint16_t lifetime_sec = 300;
    // Registration retransmission policy. By default retransmission backs
    // off exponentially with decorrelated jitter: the first wait is exactly
    // `retransmit_interval`, each later wait is drawn uniform from
    // [interval, 3 * previous] and capped at `retransmit_max_interval`.
    // Disabling `retransmit_backoff` restores the paper's fixed interval
    // (used for Figure-7 calibration runs).
    Duration retransmit_interval = Seconds(1);
    Duration retransmit_max_interval = Seconds(8);
    bool retransmit_backoff = true;
    int max_retransmits = 4;
    // Re-register shortly before the binding lifetime runs out.
    bool auto_renew = true;
    // Fraction of the granted lifetime after which renewal starts.
    double renewal_fraction = 0.8;
    // Max registration sends per renewal before giving up; 0 = never give up
    // (a renewal keeps retrying with backoff until it succeeds or the
    // attachment changes, so a binding cannot silently expire mid-renewal).
    int renewal_retry_budget = 0;
    // On a kDeniedIdentificationMismatch reply (HA restarted or replay
    // window desynced), immediately re-register with a fresh identification
    // instead of failing the attach.
    bool resync_on_identification_mismatch = true;
    // On a kDeniedInsufficientResources reply (the HA's admission filter
    // shed the request under load, DESIGN.md §17), back off and retry with
    // the decorrelated-jitter schedule instead of failing the attach. These
    // retries do not consume the max_retransmits budget — the HA explicitly
    // said "try again later", so the host converges once the load clears.
    bool retry_on_insufficient_resources = true;
    // Replicated-HA failover (DESIGN.md §14): when set, a run of unanswered
    // registration sends to the active home agent makes the host switch to
    // this backup (and back, alternating) before the next retransmit. The
    // identification sequence continues across the switch, so a backup that
    // mirrored the primary's replay window accepts immediately.
    std::optional<Ipv4Address> backup_home_agent;
    // Unanswered sends to the active HA before each failover switch.
    int failover_after_sends = 2;
    // Timeout for triangle-route probes.
    Duration probe_timeout = Seconds(3);
    // Shared secret with the home agent. When set, every registration
    // request carries a mobile-home authenticator and replies must verify.
    std::optional<MipAuthKey> auth_key;
    Calibration calibration = Calibration::Default();
    // When given, the host's accounting lands here under "mh.*" (counters
    // plus an "mh.handoff_ms" histogram of successful-attach total times);
    // otherwise in a private registry, so counters() behaves identically
    // either way.
    MetricsRegistry* metrics = nullptr;
  };

  // A point of attachment on some network.
  struct Attachment {
    NetDevice* device = nullptr;
    Ipv4Address care_of;
    SubnetMask mask{24};
    Ipv4Address gateway;
  };

  enum class State {
    kDetached,     // No usable attachment.
    kAtHome,       // Home address on the home device; no mobility machinery.
    kRegistering,  // Attached to a foreign net, registration in flight.
    kRegistered,   // Binding installed at the HA.
  };

  // Timestamps of the registration steps (paper Figure 7).
  struct RegistrationTimeline {
    Time start;
    Time interface_configured;
    Time route_changed;
    Time request_sent;
    Time reply_received;
    Time done;
    bool success = false;
    int retransmissions = 0;

    Duration Total() const { return done - start; }
    Duration PreRegistration() const { return route_changed - start; }
    Duration RequestReply() const { return reply_received - request_sent; }
    Duration PostRegistration() const { return done - reply_received; }
  };

  // Snapshot of the host's accounting; the live values are registry-backed
  // counters named "mh.<field>".
  struct Counters {
    uint64_t registrations_sent = 0;
    uint64_t registrations_accepted = 0;
    uint64_t registrations_denied = 0;
    uint64_t registrations_timed_out = 0;
    uint64_t renewals = 0;
    // Registration requests re-sent after a retransmit timeout.
    uint64_t retransmissions = 0;
    // Renewals that outlived the binding lifetime (HA-side binding gone).
    uint64_t bindings_lost = 0;
    // Lost bindings later re-established without a new attach.
    uint64_t recoveries = 0;
    // Re-registrations triggered by kDeniedIdentificationMismatch.
    uint64_t resyncs = 0;
    // Backoff-and-retry rounds triggered by kDeniedInsufficientResources
    // (the HA's admission filter shed the request under load).
    uint64_t admission_backoffs = 0;
    // Replies discarded because their identification was already accepted.
    uint64_t duplicate_replies_dropped = 0;
    // Replies discarded as stale (identification matches no outstanding or
    // accepted request).
    uint64_t stale_replies_dropped = 0;
    uint64_t packets_tunneled_out = 0;
    uint64_t packets_triangle_out = 0;
    uint64_t packets_encap_direct_out = 0;
    uint64_t packets_decapsulated_in = 0;
    uint64_t probes_sent = 0;
    uint64_t probe_fallbacks = 0;
    // Switches of the active home agent after unanswered registrations.
    uint64_t failover_count = 0;
  };

  using CompletionCallback = std::function<void(bool success)>;

  MobileHost(Node& node, Config config);
  ~MobileHost();

  MobileHost(const MobileHost&) = delete;
  MobileHost& operator=(const MobileHost&) = delete;

  // --- Attachment management -------------------------------------------------

  // Configures the home address on the (already up) home device, announces it
  // with a gratuitous ARP, and deregisters with the home agent if a binding
  // may exist. `done` fires when deregistration settles.
  void AttachHome(CompletionCallback done = nullptr);

  // Full foreign attach on an already-up device: assign the care-of address
  // (interface-config cost), update routes (route-update cost), register with
  // the HA (request/reply with retransmission), apply post-registration work.
  // Supersedes any in-flight attach. Records a RegistrationTimeline.
  void AttachForeign(const Attachment& attachment, CompletionCallback done = nullptr);

  // Same-subnet care-of address change (experiment E1 / Figure 7): same as
  // AttachForeign, keeping the current device and gateway.
  void SwitchCareOfAddress(Ipv4Address new_care_of, CompletionCallback done = nullptr);

  // Hot switch: the target device is already up (and typically already
  // configured); only routes change and a new registration is sent.
  void HotSwitchTo(const Attachment& attachment, CompletionCallback done = nullptr);

  // Cold switch: tears down the current device, brings the new one up (paying
  // its bring-up latency), then performs the full foreign attach.
  void ColdSwitchTo(const Attachment& attachment, CompletionCallback done = nullptr);

  // Extension (paper §5.1): attach through a foreign agent on the visited
  // network instead of acquiring a co-located care-of address. The MH needs
  // *no* IP address of its own: the FA relays registration, decapsulates
  // tunnel traffic, and serves as the default router. `device` must be up.
  void AttachViaForeignAgent(NetDevice* device, Ipv4Address fa_address,
                             CompletionCallback done = nullptr);

  bool attached_via_foreign_agent() const { return fa_mode_; }

  // --- Policy -----------------------------------------------------------------

  MobilePolicyTable& policy_table() { return policy_table_; }

  // Probes whether the triangle route works to `correspondent` by pinging it
  // with the home address as source. On success installs a verified
  // triangle-route entry; on failure (timeout or ICMP admin-prohibited)
  // caches a tunnel fallback. (Paper §3.2.)
  void ProbeTriangleRoute(Ipv4Address correspondent, std::function<void(bool ok)> done);

  // --- Introspection -----------------------------------------------------------

  State state() const { return state_; }
  bool at_home() const { return state_ == State::kAtHome; }
  bool registered() const { return state_ == State::kRegistered; }
  const Attachment& attachment() const { return attachment_; }
  Ipv4Address care_of() const { return attachment_.care_of; }
  const Config& config() const { return config_; }
  const RegistrationTimeline& last_timeline() const { return timeline_; }
  // The home agent registrations (and reverse tunnels) currently target;
  // config().home_agent unless failover switched to the backup.
  Ipv4Address active_home_agent() const { return active_home_agent_; }
  Counters counters() const;
  VirtualInterface* vif() { return vif_; }
  Node& node() { return node_; }

 private:
  // Registry-backed counters; field names mirror Counters so increment sites
  // read the same as before the telemetry migration.
  struct LiveCounters {
    CounterRef registrations_sent;
    CounterRef registrations_accepted;
    CounterRef registrations_denied;
    CounterRef registrations_timed_out;
    CounterRef renewals;
    CounterRef retransmissions;
    CounterRef bindings_lost;
    CounterRef recoveries;
    CounterRef resyncs;
    CounterRef admission_backoffs;
    CounterRef duplicate_replies_dropped;
    CounterRef stale_replies_dropped;
    CounterRef packets_tunneled_out;
    CounterRef packets_triangle_out;
    CounterRef packets_encap_direct_out;
    CounterRef packets_decapsulated_in;
    CounterRef probes_sent;
    CounterRef probe_fallbacks;
    CounterRef failover_count;
  };

  [[nodiscard]] std::optional<RouteDecision> RouteOverride(const RouteQuery& query);
  void EncapsulateOut(const Ipv4Header& inner, const Packet& inner_wire);

  // Shared attach pipeline (steps time-stamped into timeline_).
  void BeginAttach(const Attachment& attachment, bool skip_interface_config,
                   CompletionCallback done);
  void StepConfigureInterface(uint64_t generation, bool skip_cost);
  void StepUpdateRoutes(uint64_t generation);
  void StepSendRegistration(uint64_t generation);

  void ContinueAttachHome(uint64_t generation);
  void BeginRegistrationAttempt();
  Duration NextRetransmitDelay();
  void SendRegistrationRequest(uint64_t generation, bool deregistration);
  void OnRegistrationDatagram(const std::vector<uint8_t>& data, const UdpSocket::Metadata& meta);
  void OnRetransmitTimer(uint64_t generation, bool deregistration);
  // Escalation on registration silence: after failover_after_sends unanswered
  // sends, point the next (re)send at the other configured home agent.
  void MaybeFailoverHomeAgent();
  void FinishRegistration(uint64_t generation, bool success);
  void ScheduleRenewal(uint16_t granted_lifetime_sec);
  void CancelPendingRegistration();

  Node& node_;
  Config config_;
  State state_ = State::kDetached;
  Attachment attachment_;
  Attachment pending_attachment_;
  CompletionCallback pending_done_;
  bool pending_deregistration_ = false;
  // True while the MH is operating away from home (mobility policy active).
  bool away_ = false;
  // True while a lifetime-renewal registration is in flight.
  bool renewing_ = false;
  // True when the current attachment goes through a foreign agent.
  bool fa_mode_ = false;
  MacAddress fa_mac_;

  VirtualInterface* vif_ = nullptr;  // Owned by the node.
  std::unique_ptr<IpIpTunnelEndpoint> tunnel_;
  std::unique_ptr<UdpSocket> reg_socket_;
  std::unique_ptr<Pinger> pinger_;
  MobilePolicyTable policy_table_;

  RegistrationTimeline timeline_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;  // Fallback when unbound.
  LiveCounters counters_;
  Histogram* handoff_histogram_ = nullptr;  // "mh.handoff_ms"

  // Invalidates scheduled steps of superseded attach operations.
  uint64_t attach_generation_ = 0;
  // Registration target; flips between home_agent and backup_home_agent on
  // failover (initialized to config_.home_agent in the constructor).
  Ipv4Address active_home_agent_;
  // Registration sends since the last reply from the active HA.
  uint64_t unanswered_sends_ = 0;
  uint64_t next_identification_ = 1;
  uint64_t outstanding_identification_ = 0;
  uint64_t last_accepted_identification_ = 0;
  int retransmits_left_ = 0;
  // Previous decorrelated-jitter wait; zero means a fresh attempt (the next
  // wait is exactly retransmit_interval).
  Duration backoff_;
  // Whether the request currently in flight is a deregistration (needed to
  // re-send it verbatim on an identification resync).
  bool in_flight_deregistration_ = false;
  // Resync re-sends allowed for the current attempt (guards against a
  // mismatch loop with a broken HA).
  int resync_attempts_left_ = 0;
  // When the HA-side binding lapses if no renewal lands.
  Time binding_expires_;
  // The binding lifetime passed while a renewal was still in flight.
  bool binding_lost_ = false;
  // Sends within the current renewal (compared against renewal_retry_budget).
  uint64_t renewal_sends_ = 0;
  EventId retransmit_event_;
  EventId renewal_event_;
};

}  // namespace msn

#endif  // MSN_SRC_MIP_MOBILE_HOST_H_
