#include "src/node/node.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace msn {
namespace {

uint32_t g_next_mac_id = 1;

}  // namespace

MacAddress Node::AllocateMac() { return MacAddress::FromId(g_next_mac_id++); }

void Node::ResetMacAllocator() { g_next_mac_id = 1; }

Node::Node(Simulator& sim, std::string name, MetricsRegistry* metrics)
    : sim_(sim), name_(std::move(name)), metrics_(metrics),
      stack_(std::make_unique<IpStack>(sim, name_, metrics)) {}

Node::~Node() = default;

void Node::RegisterDeviceGauges(NetDevice* device) {
  if (metrics_ == nullptr) {
    return;
  }
  device->BindQueueDepthGauge(
      &metrics_->GetGauge("dev." + name_ + "." + device->name() + ".queue_depth"));
}

EthernetDevice* Node::AddEthernet(const std::string& dev_name, BroadcastMedium* medium) {
  auto device = std::make_unique<EthernetDevice>(sim_, dev_name, AllocateMac());
  EthernetDevice* raw = device.get();
  if (medium != nullptr) {
    raw->AttachTo(medium);
  }
  stack_->AddInterface(raw);
  RegisterDeviceGauges(raw);
  devices_.push_back(std::move(device));
  return raw;
}

StripRadioDevice* Node::AddRadio(const std::string& dev_name, BroadcastMedium* medium) {
  auto device = std::make_unique<StripRadioDevice>(sim_, dev_name, AllocateMac());
  StripRadioDevice* raw = device.get();
  if (medium != nullptr) {
    raw->AttachTo(medium);
  }
  stack_->AddInterface(raw);
  RegisterDeviceGauges(raw);
  devices_.push_back(std::move(device));
  return raw;
}

LoopbackDevice* Node::AddLoopback() {
  auto device = std::make_unique<LoopbackDevice>(sim_, "lo");
  LoopbackDevice* raw = device.get();
  raw->ForceUp();
  stack_->AddInterface(raw);
  stack_->ConfigureAddress(raw, Ipv4Address::Loopback(), SubnetMask(8));
  devices_.push_back(std::move(device));
  return raw;
}

NetDevice* Node::AdoptDevice(std::unique_ptr<NetDevice> device) {
  NetDevice* raw = device.get();
  stack_->AddInterface(raw);
  devices_.push_back(std::move(device));
  return raw;
}

NetDevice* Node::FindDevice(const std::string& dev_name) const {
  for (const auto& device : devices_) {
    if (device->name() == dev_name) {
      return device.get();
    }
  }
  return nullptr;
}

void Node::ConfigureInterface(NetDevice* device, const std::string& cidr) {
  auto subnet = Subnet::Parse(cidr);
  auto addr = Ipv4Address::Parse(cidr.substr(0, cidr.find('/')));
  if (!subnet || !addr) {
    std::fprintf(stderr, "Node::ConfigureInterface: bad cidr '%s'\n", cidr.c_str());
    std::abort();
  }
  stack_->ConfigureAddress(device, *addr, subnet->mask());
}

void Node::AddDefaultRoute(Ipv4Address gateway, NetDevice* device) {
  stack_->routes().Add(RouteEntry{Subnet::Default(), gateway, device, Ipv4Address::Any(), 0});
}

void Node::AddNetworkRoute(const Subnet& subnet, Ipv4Address gateway, NetDevice* device) {
  stack_->routes().Add(RouteEntry{subnet, gateway, device, Ipv4Address::Any(), 0});
}

void Node::AddHostRoute(Ipv4Address host, Ipv4Address gateway, NetDevice* device) {
  stack_->routes().Add(
      RouteEntry{Subnet(host, SubnetMask(32)), gateway, device, Ipv4Address::Any(), 0});
}

}  // namespace msn
