file(REMOVE_RECURSE
  "libmsn_mip.a"
)
