// Quickstart: the MosquitoNet pitch in sixty lines of API.
//
// A mobile host keeps its home address while moving from its home Ethernet
// to a foreign network with a dynamically acquired care-of address; a
// correspondent pinging the home address never notices the move.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "src/node/icmp.h"
#include "src/topo/testbed.h"
#include "src/util/logging.h"

using namespace msn;

namespace {

void PingHome(Testbed& tb, const char* label) {
  Pinger pinger(tb.ch->stack());
  pinger.Ping(Testbed::HomeAddress(), Seconds(3), [label](const Pinger::Result& r) {
    if (r.success) {
      std::printf("  [CH] ping %s: reply in %.2f ms  (%s)\n",
                  Testbed::HomeAddress().ToString().c_str(), r.rtt.ToMillisF(), label);
    } else {
      std::printf("  [CH] ping %s: TIMEOUT  (%s)\n",
                  Testbed::HomeAddress().ToString().c_str(), label);
    }
  });
  tb.RunFor(Seconds(4));
}

}  // namespace

int main() {
  std::printf("=== MosquitoNet quickstart ===\n\n");

  // The paper's Figure 5 testbed: home net 36.135, foreign wired net 36.8,
  // radio net 36.134, a router/home-agent, and a correspondent host.
  Testbed tb;

  std::printf("1. The mobile host boots at home (%s on net 36.135).\n",
              Testbed::HomeAddress().ToString().c_str());
  tb.StartMobileAtHome();
  PingHome(tb, "MH at home: plain IP, no mobility machinery");

  std::printf("\n2. The mobile host moves: its Ethernet now plugs into the CS\n"
              "   department's net 36.8, where a DHCP server hands out addresses.\n");
  tb.mh->stack().routes().RemoveForDevice(tb.mh_eth);
  tb.mh->stack().UnconfigureAddress(tb.mh_eth);
  tb.MoveMhEthernetTo(tb.net8.get());
  tb.ForceEthUp();

  DhcpClient dhcp(*tb.mh, tb.mh_eth);
  dhcp.Acquire([&tb](std::optional<DhcpLease> lease) {
    if (!lease) {
      std::printf("   DHCP failed!\n");
      return;
    }
    std::printf("   DHCP leased care-of address %s (gateway %s).\n",
                lease->address.ToString().c_str(), lease->gateway.ToString().c_str());
    MobileHost::Attachment att;
    att.device = tb.mh_eth;
    att.care_of = lease->address;
    att.mask = lease->mask;
    att.gateway = lease->gateway;
    tb.mobile->AttachForeign(att, [&tb](bool ok) {
      const auto& tl = tb.mobile->last_timeline();
      std::printf("   Registration with home agent %s: %s (%.2f ms total,\n"
                  "   %.2f ms request->reply).\n",
                  tb.home_agent_address().ToString().c_str(), ok ? "ACCEPTED" : "FAILED",
                  tl.Total().ToMillisF(), tl.RequestReply().ToMillisF());
    });
  });
  tb.RunFor(Seconds(5));

  auto binding = tb.home_agent->GetBinding(Testbed::HomeAddress());
  if (binding) {
    std::printf("   Home agent binding: %s -> %s\n",
                binding->home_address.ToString().c_str(), binding->care_of.ToString().c_str());
  }
  PingHome(tb, "MH away: tunneled via the home agent, same home address");

  std::printf("\n3. Traffic counters: HA tunneled %llu packets; MH decapsulated %llu\n"
              "   and reverse-tunneled %llu.\n",
              static_cast<unsigned long long>(tb.home_agent->counters().packets_tunneled),
              static_cast<unsigned long long>(tb.mobile->counters().packets_decapsulated_in),
              static_cast<unsigned long long>(tb.mobile->counters().packets_tunneled_out));

  std::printf("\n4. The mobile host returns home and deregisters.\n");
  tb.MoveMhEthernetTo(tb.net135.get());
  tb.mobile->AttachHome([](bool ok) {
    std::printf("   Deregistration: %s.\n", ok ? "done" : "failed");
  });
  tb.RunFor(Seconds(3));
  PingHome(tb, "MH home again: direct delivery");

  std::printf("\nDone: the correspondent used one address (%s) throughout.\n",
              Testbed::HomeAddress().ToString().c_str());
  return 0;
}
