// Longest-prefix-match IPv4 routing table, modeled on the Linux 1.2 kernel
// table the paper modified: each entry names a destination prefix, an
// optional gateway, the output device, and an optional preferred source
// address. Mobile IP leaves this table untouched and layers policy on top via
// the route-lookup override (see IpStack), exactly as the paper separates
// "routing decisions" from "mobility decisions".
#ifndef MSN_SRC_NODE_ROUTING_TABLE_H_
#define MSN_SRC_NODE_ROUTING_TABLE_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/net/address.h"

namespace msn {

class NetDevice;

struct RouteEntry {
  Subnet dest;
  // Next-hop gateway; Any() means the destination is on-link.
  Ipv4Address gateway;
  NetDevice* device = nullptr;
  // Source address to prefer for locally originated packets using this
  // route; Any() means "use the output interface's address".
  Ipv4Address pref_src;
  int metric = 0;

  std::string ToString() const;
};

class RoutingTable {
 public:
  void Add(const RouteEntry& entry);
  // Removes entries matching the exact destination prefix (and device, if
  // non-null). Returns the number removed.
  size_t Remove(const Subnet& dest, NetDevice* device = nullptr);
  size_t RemoveWhere(const std::function<bool(const RouteEntry&)>& pred);
  // Removes every route through `device` (interface shutdown).
  size_t RemoveForDevice(NetDevice* device);
  void Clear();

  // Longest-prefix match; ties broken by lowest metric, then insertion order.
  [[nodiscard]] std::optional<RouteEntry> Lookup(Ipv4Address dst) const;

  const std::vector<RouteEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

  // Fired after every mutation that changed the table (Add always; the
  // Remove variants and Clear only when entries actually went away). The
  // owning IpStack uses it to invalidate the flow cache, so every route
  // install — including ICMP-redirect host routes and interface
  // configuration — orphans cached decisions without the mutator knowing
  // about caching.
  void SetChangeListener(std::function<void()> fn) { on_change_ = std::move(fn); }

  std::string ToString() const;

 private:
  void NotifyChanged() {
    if (on_change_) {
      on_change_();
    }
  }

  std::vector<RouteEntry> entries_;
  std::function<void()> on_change_;
};

}  // namespace msn

#endif  // MSN_SRC_NODE_ROUTING_TABLE_H_
