file(REMOVE_RECURSE
  "CMakeFiles/home_agent_test.dir/home_agent_test.cc.o"
  "CMakeFiles/home_agent_test.dir/home_agent_test.cc.o.d"
  "home_agent_test"
  "home_agent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/home_agent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
