// UDP sockets.
//
// A socket may optionally bind a *source address*. Per the paper's two-roles
// design (§5.2): a socket with no bound source is an ordinary, non-mobile-
// aware application — the mobile host assigns it the home address and full
// mobile-IP treatment. A socket that binds a source address (e.g. the current
// care-of address, or a specific interface's address) is "mobile-aware" /
// local-role traffic and bypasses mobility policy entirely.
#ifndef MSN_SRC_NODE_UDP_H_
#define MSN_SRC_NODE_UDP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/net/address.h"
#include "src/net/headers.h"

namespace msn {

class IpStack;
class NetDevice;

class UdpSocket {
 public:
  struct Metadata {
    Ipv4Address src;
    uint16_t src_port = 0;
    Ipv4Address dst;       // The address the datagram was sent to.
    NetDevice* ingress = nullptr;
    // Link-layer source of the frame that carried the datagram (Zero for
    // locally generated or tunnel-decapsulated traffic). A foreign agent
    // uses this to learn visiting mobile hosts' hardware addresses.
    MacAddress link_src;
  };
  using ReceiveHandler =
      std::function<void(const std::vector<uint8_t>& data, const Metadata& meta)>;

  explicit UdpSocket(IpStack& stack);
  ~UdpSocket();

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  // Binds a local port; 0 picks an ephemeral port. Returns false if no port
  // could be allocated.
  [[nodiscard]] bool Bind(uint16_t port);
  // Pins the source address (marks this socket mobile-aware / local-role).
  void BindSourceAddress(Ipv4Address addr) { bound_src_ = addr; }
  Ipv4Address bound_source() const { return bound_src_; }

  void SetReceiveHandler(ReceiveHandler handler) { handler_ = std::move(handler); }

  // Sends a datagram. Binds an ephemeral port first if not yet bound.
  void SendTo(Ipv4Address dst, uint16_t dst_port, std::vector<uint8_t> payload);
  // Variant with raw send options (used by DHCP for broadcast on an
  // unconfigured interface).
  struct SendExtras {
    NetDevice* force_device = nullptr;
    bool force_broadcast_mac = false;
    // Frame the datagram to this specific link-layer address (bypasses ARP;
    // used by hosts without an address talking to a known foreign agent).
    std::optional<MacAddress> force_dst_mac;
    bool allow_unconfigured_source = false;
  };
  void SendToWithExtras(Ipv4Address dst, uint16_t dst_port, std::vector<uint8_t> payload,
                        const SendExtras& extras);

  uint16_t local_port() const { return local_port_; }
  bool bound() const { return local_port_ != 0; }

  // Called by the stack on delivery.
  void Deliver(const std::vector<uint8_t>& data, const Metadata& meta);

  uint64_t datagrams_received() const { return datagrams_received_; }
  uint64_t datagrams_sent() const { return datagrams_sent_; }

 private:
  IpStack& stack_;
  uint16_t local_port_ = 0;
  Ipv4Address bound_src_;
  ReceiveHandler handler_;
  uint64_t datagrams_received_ = 0;
  uint64_t datagrams_sent_ = 0;
};

}  // namespace msn

#endif  // MSN_SRC_NODE_UDP_H_
