// Fleet tracking: one home agent serving a whole fleet of mobile hosts.
//
// Twelve couriers' laptops share the home subnet 36.135 and one home agent.
// Each courier roams between the wired dock network and the radio cell on
// its own schedule, acquiring care-of addresses via DHCP, while a dispatch
// server (the correspondent) polls every unit at its *home* address. The
// dispatcher's view never changes; the home agent juggles all the bindings.
#include <cstdio>
#include <memory>
#include <vector>

#include "src/dhcp/dhcp.h"
#include "src/mip/home_agent.h"
#include "src/mip/mobile_host.h"
#include "src/topo/testbed.h"
#include "src/tracing/probe.h"

using namespace msn;

namespace {

struct Courier {
  std::unique_ptr<Node> node;
  EthernetDevice* eth = nullptr;
  StripRadioDevice* radio = nullptr;
  std::unique_ptr<MobileHost> mobile;
  std::unique_ptr<DhcpClient> dhcp;
  std::unique_ptr<ProbeEchoServer> telemetry;
  Ipv4Address home;
  bool on_radio = false;
};

}  // namespace

int main() {
  std::printf("=== Fleet tracking: one home agent, twelve roaming couriers ===\n\n");
  Testbed tb;  // Supplies media, router, HA, CH, DHCP servers.

  const int kCouriers = 12;
  std::vector<Courier> fleet(kCouriers);
  for (int i = 0; i < kCouriers; ++i) {
    Courier& c = fleet[i];
    c.node = std::make_unique<Node>(tb.sim, "courier" + std::to_string(i));
    c.eth = c.node->AddEthernet("eth0", tb.net8.get());
    c.radio = c.node->AddRadio("strip0", tb.radio134.get());
    c.home = Ipv4Address(36, 135, 1, static_cast<uint8_t>(10 + i));

    MobileHost::Config mc;
    mc.home_address = c.home;
    mc.home_mask = SubnetMask(16);
    mc.home_agent = tb.home_agent_address();
    mc.home_gateway = Testbed::RouterOn135();
    mc.home_device = c.eth;
    c.mobile = std::make_unique<MobileHost>(*c.node, mc);
    c.telemetry = std::make_unique<ProbeEchoServer>(*c.node, 7);

    // Half the fleet starts on the dock Ethernet (via DHCP), half on radio.
    if (i % 2 == 0) {
      c.eth->ForceUp();
      c.dhcp = std::make_unique<DhcpClient>(*c.node, c.eth);
      c.dhcp->Acquire([&tb, &c](std::optional<DhcpLease> lease) {
        if (!lease) {
          return;
        }
        MobileHost::Attachment att{c.eth, lease->address, lease->mask, lease->gateway};
        c.mobile->AttachForeign(att, nullptr);
      });
    } else {
      c.radio->ForceUp();
      c.on_radio = true;
      c.dhcp = std::make_unique<DhcpClient>(*c.node, c.radio);
      c.dhcp->Acquire([&tb, &c](std::optional<DhcpLease> lease) {
        if (!lease) {
          return;
        }
        MobileHost::Attachment att{c.radio, lease->address, lease->mask, lease->gateway};
        c.mobile->AttachForeign(att, nullptr);
      });
    }
  }
  tb.RunFor(Seconds(12));

  std::printf("After boot, the home agent holds %zu bindings:\n",
              tb.home_agent->binding_count());
  for (const Courier& c : fleet) {
    auto binding = tb.home_agent->GetBinding(c.home);
    std::printf("  %-14s -> %s\n", c.home.ToString().c_str(),
                binding ? binding->care_of.ToString().c_str() : "(unregistered)");
  }

  // The dispatcher polls every courier at its home address.
  std::printf("\nDispatcher polls every courier (5 probes each, 200 ms apart):\n");
  std::vector<std::unique_ptr<ProbeSender>> pollers;
  for (const Courier& c : fleet) {
    pollers.push_back(std::make_unique<ProbeSender>(
        *tb.ch, ProbeSender::Config{c.home, 7, Milliseconds(200)}));
    pollers.back()->Start();
  }
  tb.RunFor(Seconds(1));
  for (auto& p : pollers) {
    p->Stop();
  }
  tb.RunFor(Seconds(2));
  int reachable = 0;
  for (size_t i = 0; i < pollers.size(); ++i) {
    const bool ok = pollers[i]->received() > 0;
    reachable += ok ? 1 : 0;
    std::printf("  %-14s : %llu/%llu answered%s\n", fleet[i].home.ToString().c_str(),
                static_cast<unsigned long long>(pollers[i]->received()),
                static_cast<unsigned long long>(pollers[i]->sent()),
                fleet[i].on_radio ? "  (radio)" : "  (dock)");
  }
  std::printf("Reachable: %d / %d, all at their permanent home addresses.\n", reachable,
              kCouriers);

  // Shift change: dock couriers drive off (hot switch to radio).
  std::printf("\nShift change: dock couriers drive off onto the radio...\n");
  for (int i = 0; i < kCouriers; i += 2) {
    Courier& c = fleet[i];
    c.radio->ForceUp();
    c.dhcp = std::make_unique<DhcpClient>(*c.node, c.radio);
    c.dhcp->Acquire([&c](std::optional<DhcpLease> lease) {
      if (!lease) {
        return;
      }
      MobileHost::Attachment att{c.radio, lease->address, lease->mask, lease->gateway};
      c.mobile->HotSwitchTo(att, nullptr);
    });
  }
  tb.RunFor(Seconds(12));

  int on_radio = 0;
  for (const Courier& c : fleet) {
    auto binding = tb.home_agent->GetBinding(c.home);
    if (binding && Testbed::Net134().Contains(binding->care_of)) {
      ++on_radio;
    }
  }
  std::printf("Bindings now on the radio subnet: %d / %d.\n", on_radio, kCouriers);
  std::printf("HA stats: %llu registrations accepted, mean processing %.2f ms.\n",
              static_cast<unsigned long long>(
                  tb.home_agent->counters().registrations_accepted),
              tb.home_agent->processing_stats_ms().mean());
  std::printf("\nOne home agent, zero support from the visited networks.\n");
  return 0;
}
