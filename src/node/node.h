// A host: a bundle of owned network devices plus an IP stack, with
// convenience helpers for topology construction.
#ifndef MSN_SRC_NODE_NODE_H_
#define MSN_SRC_NODE_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/link/link_device.h"
#include "src/node/ip_stack.h"

namespace msn {

class Node {
 public:
  // With a registry, the node's stack counters land under "ip.<name>.*" and
  // each added device mirrors its transmit-queue depth into a
  // "dev.<name>.<dev>.queue_depth" gauge. Without one, the stack keeps
  // private accounting and no gauges are registered.
  Node(Simulator& sim, std::string name, MetricsRegistry* metrics = nullptr);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  Simulator& sim() { return sim_; }
  IpStack& stack() { return *stack_; }
  const std::string& name() const { return name_; }

  // Device factories. Devices start *down*; call ForceUp() (topology setup)
  // or BringUp() (runtime, pays the bring-up latency). If `medium` is given
  // the device attaches to it.
  EthernetDevice* AddEthernet(const std::string& dev_name, BroadcastMedium* medium = nullptr);
  StripRadioDevice* AddRadio(const std::string& dev_name, BroadcastMedium* medium = nullptr);
  LoopbackDevice* AddLoopback();
  // Registers an externally created device (e.g. a mip::VirtualInterface) and
  // takes ownership.
  NetDevice* AdoptDevice(std::unique_ptr<NetDevice> device);

  NetDevice* FindDevice(const std::string& dev_name) const;

  // Configuration helpers.
  // Parses "a.b.c.d/len", assigns the address and installs the connected
  // route (the device must already be added).
  void ConfigureInterface(NetDevice* device, const std::string& cidr);
  void AddDefaultRoute(Ipv4Address gateway, NetDevice* device);
  void AddNetworkRoute(const Subnet& subnet, Ipv4Address gateway, NetDevice* device);
  void AddHostRoute(Ipv4Address host, Ipv4Address gateway, NetDevice* device);

  // Fresh MAC address unique across the process.
  static MacAddress AllocateMac();
  // Rewinds the MAC allocator. The testbed calls this as it boots so a
  // scenario's wire bytes (ARP payloads embed MACs) are identical no matter
  // how many testbeds ran earlier in the process — the differential datapath
  // tests compare such traces across runs.
  static void ResetMacAllocator();

 private:
  void RegisterDeviceGauges(NetDevice* device);

  Simulator& sim_;
  std::string name_;
  MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<IpStack> stack_;
  std::vector<std::unique_ptr<NetDevice>> devices_;
};

}  // namespace msn

#endif  // MSN_SRC_NODE_NODE_H_
