#include "src/check/oracles.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "src/mip/reg_load.h"

namespace msn {
namespace {

// Margins around spec events inside which probe loss is explainable.
constexpr Duration kPreEventMargin = Seconds(1);
constexpr Duration kPostMoveMargin = Seconds(8);
constexpr Duration kPostFaultMargin = Seconds(3);
// A probe only counts as provably lost if it was sent this deep inside a
// quiet stretch (entry margin covers losses decided just before the stretch;
// exit margin covers round trips still in flight when it ends).
constexpr Duration kQuietEntryMargin = Seconds(1);
constexpr Duration kQuietExitMargin = Milliseconds(2500);

// coverage-continuity thresholds (in OracleSuite::kTickInterval ticks): some
// cell must have been cleanly covering continuously for this long...
constexpr int kCoveredStreakTicks = 40;  // 20 s.
// ...while the MH was unable to communicate for this long, before the broken
// handoff loop is called. Generous: a cold switch plus registration plus the
// detector's hysteresis and residency guard all fit several times over.
constexpr int kDisconnectedStreakTicks = 24;  // 12 s.
constexpr double kDeepCoverageLoss = 0.02;

std::string FormatMs(Duration d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64 "ms", d.millis());
  return buf;
}

// The last instant a fault event can still affect the run: the window end for
// timed faults, the event time for instantaneous ones. A profile's influence
// lasts until its clear, which is its own event in the list.
Duration FaultEffectEnd(const FaultEventSpec& f) {
  switch (f.kind) {
    case FaultEventSpec::Kind::kBlackout:
    case FaultEventSpec::Kind::kHaOutage:
      return f.at + f.length;
    case FaultEventSpec::Kind::kHaCrash:
      // Rejoin crash: the rejoin (resync, demotion) is the last disturbance.
      // Permanent crash: the disturbance ends once the backup has taken over
      // and the MH has failed over to it — bounded by the takeover timeout
      // plus the MH's renewal-escalation window.
      return f.length.nanos() > 0 ? f.at + f.length : f.at + Seconds(8);
    case FaultEventSpec::Kind::kProfile:
    case FaultEventSpec::Kind::kClearProfile:
      return f.at;
  }
  return f.at;
}

bool ProfileActive(const FaultInjector* injector) {
  if (injector == nullptr) {
    return false;
  }
  const FaultProfile& p = injector->profile();
  return p.burst_loss.has_value() || p.duplicate_probability > 0.0 ||
         p.reorder_probability > 0.0 || p.corrupt_probability > 0.0;
}

bool SpecInjectsDuplicates(const ScenarioSpec& spec) {
  for (const FaultEventSpec& f : spec.faults) {
    if (f.kind == FaultEventSpec::Kind::kProfile && f.duplicate_probability > 0.0) {
      return true;
    }
  }
  return false;
}

}  // namespace

void OracleReport::Add(const std::string& oracle, const std::string& detail) {
  Violation& v = violations[oracle];
  if (v.count == 0) {
    v.detail = detail;
  }
  ++v.count;
}

std::string OracleReport::ToString() const {
  std::string out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "oracle checks: %" PRIu64 "\n", checks);
  out += buf;
  if (violations.empty()) {
    out += "violations: none\n";
    return out;
  }
  std::snprintf(buf, sizeof(buf), "violations: %zu\n", violations.size());
  out += buf;
  for (const auto& [oracle, v] : violations) {
    std::snprintf(buf, sizeof(buf), "  [%" PRIu64 "x] ", v.count);
    out += buf;
    out += oracle;
    out += ": ";
    out += v.detail;
    out += '\n';
  }
  return out;
}

bool SettlesCleanly(const ScenarioSpec& spec) {
  if (spec.mobility.enabled) {
    // Motion never stops, so no terminal state is promised: the host may end
    // the run mid-handoff at a cell edge.
    return false;
  }
  Duration last_fault_end;
  for (const FaultEventSpec& f : spec.faults) {
    last_fault_end = std::max(last_fault_end, FaultEffectEnd(f));
  }
  if (spec.moves.empty()) {
    // Nothing ever moves the host off its home network; the at-home terminal
    // state only needs the faults to be over by the end.
    return last_fault_end + Seconds(1) <= spec.duration;
  }
  const Duration last_move = spec.moves.back().at;
  return last_move >= last_fault_end + Seconds(1) &&
         spec.duration >= last_move + Seconds(10);
}

OracleSuite::OracleSuite(Testbed& testbed, const ScenarioSpec& spec,
                         const TrafficHarness& traffic, Media media)
    : tb_(testbed), spec_(spec), traffic_(traffic), media_(media) {
  settles_ = SettlesCleanly(spec_);
  for (const MoveEventSpec& m : spec_.moves) {
    noisy_.push_back({m.at - kPreEventMargin, m.at + kPostMoveMargin});
  }
  for (const FaultEventSpec& f : spec_.faults) {
    noisy_.push_back({f.at - kPreEventMargin, FaultEffectEnd(f) + kPostFaultMargin});
  }
  // Profiles stay active from install to clear; cover the whole span, not
  // just the endpoints (which the loop above already added).
  Duration profile_start[3] = {};
  bool profile_on[3] = {false, false, false};
  for (const FaultEventSpec& f : spec_.faults) {
    const size_t m = static_cast<size_t>(f.medium);
    if (f.kind == FaultEventSpec::Kind::kProfile && !profile_on[m]) {
      profile_on[m] = true;
      profile_start[m] = f.at;
    } else if (f.kind == FaultEventSpec::Kind::kClearProfile && profile_on[m]) {
      profile_on[m] = false;
      noisy_.push_back({profile_start[m] - kPreEventMargin, f.at + kPostFaultMargin});
    }
  }
  for (size_t m = 0; m < 3; ++m) {
    if (profile_on[m]) {  // Unpaired profile: noisy until the end.
      noisy_.push_back({profile_start[m] - kPreEventMargin, spec_.duration});
    }
  }
  if (spec_.overload.enabled) {
    // The registration burst plus the shed clients' capped backoff (8 s):
    // while the fleet converges, the MH's own control traffic may be shed
    // too, so probe loss in this span is explainable.
    noisy_.push_back({spec_.overload.start - kPreEventMargin,
                      spec_.overload.start + spec_.overload.window + Seconds(10)});
  }
  std::sort(noisy_.begin(), noisy_.end(),
            [](const NoisyWindow& a, const NoisyWindow& b) { return a.from < b.from; });
}

void OracleSuite::Begin() { start_ = tb_.sim.Now(); }

bool OracleSuite::InNoisyWindow(Duration offset) const {
  for (const NoisyWindow& w : noisy_) {
    if (w.from > offset) {
      break;
    }
    if (offset < w.to) {
      return true;
    }
  }
  return false;
}

bool OracleSuite::QuietNow() const {
  if (spec_.mobility.enabled) {
    return false;  // Distance-derived loss can strike at any instant.
  }
  const MobileHost& mh = *tb_.mobile;
  if (tb_.ServingAgentCount() != 1) {
    return false;  // Failover in flight: zero (or two) agents serving.
  }
  const HomeAgent& ha = *tb_.ServingAgent();
  switch (mh.state()) {
    case MobileHost::State::kRegistered: {
      if (mh.active_home_agent() != ha.config().address) {
        return false;  // MH has not switched to the serving agent yet.
      }
      const auto binding = ha.GetBinding(Testbed::HomeAddress());
      if (!binding.has_value() || binding->care_of != mh.care_of()) {
        return false;  // Mid-renewal divergence; probes may black-hole.
      }
      break;
    }
    case MobileHost::State::kAtHome:
      if (ha.HasBinding(Testbed::HomeAddress())) {
        return false;  // Stale binding still diverts traffic.
      }
      break;
    default:
      return false;
  }
  if (mh.attachment().device == tb_.mh_radio) {
    return false;  // The radio has baseline loss; probes may legitimately die.
  }
  for (const FaultInjector* injector : {media_.home, media_.wired, media_.radio}) {
    if (injector != nullptr && injector->blackout_active()) {
      return false;
    }
    if (ProfileActive(injector)) {
      return false;
    }
  }
  if (!ha.service_available()) {
    return false;
  }
  return !InNoisyWindow(tb_.sim.Now() - start_);
}

void OracleSuite::CloseQuietStretch(Time end) {
  if (quiet_since_.has_value()) {
    quiet_stretches_.emplace_back(*quiet_since_, end);
    quiet_since_.reset();
  }
}

void OracleSuite::OnTick() {
  const Time now = tb_.sim.Now();
  const HomeAgent& ha = *tb_.home_agent;

  // ttl-loop: a routing/forwarding loop anywhere shows up as TTL-expired
  // drops on some stack.
  ++report_.checks;
  for (const auto& [name, value] : tb_.metrics.ScalarSnapshot("ip.")) {
    constexpr const char* kSuffix = ".drop_ttl";
    if (name.size() > 9 && name.compare(name.size() - 9, 9, kSuffix) == 0 && value > 0) {
      report_.Add("ttl-loop", name + " = " + FormatMetricValue(value) + " at " +
                                  FormatMs(now - start_));
    }
  }

  // binding-table: one mobile host (plus, on overload runs, at most one
  // binding per fleet client) => each agent's table is bounded, and every
  // exported bindings gauge tracks its agent's table exactly.
  ++report_.checks;
  const size_t max_bindings =
      1 + (spec_.overload.enabled ? spec_.overload.clients : 0);
  for (const HomeAgent* agent : {tb_.home_agent.get(), tb_.backup_agent.get()}) {
    if (agent == nullptr) {
      continue;
    }
    if (agent->binding_count() > max_bindings) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%zu bindings for %zu registrant(s)",
                    agent->binding_count(), max_bindings);
      report_.Add("binding-table", buf);
    }
    const std::string gauge_name = agent->config().metric_prefix + "bindings";
    if (const auto gauge = tb_.metrics.ReadValue(gauge_name);
        gauge.has_value() && *gauge != static_cast<double>(agent->binding_count())) {
      report_.Add("binding-table", gauge_name + " gauge " + FormatMetricValue(*gauge) +
                                       " != binding table size");
    }
  }

  ShardOracles();

  // split-brain (live): outside noisy windows at most one agent may serve the
  // home binding. Mid-fault a promoted backup is allowed to race the failing
  // primary; the post-fault margin covers the demotion converging.
  if (tb_.backup_agent != nullptr) {
    ++report_.checks;
    if (tb_.ServingAgentCount() > 1 && !InNoisyWindow(now - start_)) {
      report_.Add("split-brain",
                  "both home agents serving at " + FormatMs(now - start_));
    }
  }

  // stale-tunnel: once the run has settled at home (deregistered, quiet), no
  // agent may tunnel another packet.
  if (settles_ && spec_.ExpectsAtHomeTerminal() && !spec_.moves.empty() &&
      now - start_ >= spec_.moves.back().at + Seconds(5)) {
    ++report_.checks;
    uint64_t tunneled = ha.counters().packets_tunneled;
    if (tb_.backup_agent != nullptr) {
      tunneled += tb_.backup_agent->counters().packets_tunneled;
    }
    if (!stale_tunnel_marker_.has_value()) {
      stale_tunnel_marker_ = tunneled;
    } else if (tunneled > *stale_tunnel_marker_) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "HA tunneled %" PRIu64 " packet(s) after the MH settled at home",
                    tunneled - *stale_tunnel_marker_);
      report_.Add("stale-tunnel", buf);
    }
  }

  // coverage-continuity (mobility runs): the MH may transiently disconnect in
  // a coverage hole or mid-handoff, but while some cell has offered clean
  // coverage continuously, a long communication outage means the
  // signal-driven handoff loop is broken (detector stuck, ping-pong guard
  // wedged, association never happening).
  if (mobility_ != nullptr) {
    ++report_.checks;
    covered_ticks_ = mobility_->AnyDeepCoverage(kDeepCoverageLoss) ? covered_ticks_ + 1 : 0;
    const MobileHost::State mh_state = tb_.mobile->state();
    const bool connected = mh_state == MobileHost::State::kRegistered ||
                           mh_state == MobileHost::State::kAtHome;
    disconnected_ticks_ = connected ? 0 : disconnected_ticks_ + 1;
    if (covered_ticks_ >= kCoveredStreakTicks &&
        disconnected_ticks_ >= kDisconnectedStreakTicks) {
      report_.Add("coverage-continuity",
                  "MH unregistered for " +
                      FormatMs(Milliseconds(kTickInterval.millis() * disconnected_ticks_)) +
                      " despite continuous cell coverage, at " + FormatMs(now - start_));
    }
  }

  FlowCacheCoherenceOracle();

  // Quiet-interval bookkeeping for the probe-conservation oracle.
  if (QuietNow()) {
    if (!quiet_since_.has_value()) {
      quiet_since_ = now;
    }
  } else {
    CloseQuietStretch(now - kTickInterval);
  }
}

void OracleSuite::FlowCacheCoherenceOracle() {
  // flow-cache-coherence: on every stack, a cached route decision for a
  // sampled destination must equal a shadow uncached lookup taken in the
  // same instant. Catches exactly the failure mode the flow cache risks: an
  // invalidation hook missing from some mutation path, leaving a decision
  // alive past the state that produced it. Queries are advisory so sampling
  // never moves per-packet policy counters, and the uncached shadow never
  // touches the cache (see IpStack::RouteLookupUncached).
  ++report_.checks;
  const Ipv4Address dsts[] = {tb_.ch_address(), tb_.home_agent_address(),
                              Testbed::HomeAddress(), Testbed::RouterOn8()};
  Node* const nodes[] = {tb_.mh.get(), tb_.router.get(), tb_.ch.get(),
                         tb_.ha_host.get(), tb_.backup_ha_host.get()};
  for (Node* node : nodes) {
    if (node == nullptr) {
      continue;
    }
    for (const Ipv4Address& dst : dsts) {
      for (const bool forwarding : {false, true}) {
        RouteQuery query;
        query.dst = dst;
        query.forwarding = forwarding;
        query.advisory = true;
        const auto cached = node->stack().RouteLookup(query);
        const auto truth = node->stack().RouteLookupUncached(query);
        const bool coherent =
            cached.has_value() == truth.has_value() &&
            (!cached.has_value() ||
             (cached->device == truth->device && cached->src == truth->src &&
              cached->next_hop == truth->next_hop));
        if (!coherent) {
          report_.Add("flow-cache-coherence",
                      node->name() + " -> " + dst.ToString() +
                          (forwarding ? " (forwarding)" : "") +
                          " cached decision diverges from uncached lookup at " +
                          FormatMs(tb_.sim.Now() - start_));
        }
      }
    }
  }
}

void OracleSuite::ShardOracles() {
  // shard-consistency: the sharded table's internal invariants (every binding
  // and queued request in the shard its home hashes to, queue indexes in step
  // with queues) hold at every instant, and each shard's bindings gauge
  // agrees with its table. Unconditional — no fault or movement can excuse a
  // broken shard map.
  ++report_.checks;
  for (const HomeAgent* agent : {tb_.home_agent.get(), tb_.backup_agent.get()}) {
    if (agent == nullptr) {
      continue;
    }
    if (std::string err = agent->ShardConsistencyError(); !err.empty()) {
      report_.Add("shard-consistency", err);
    }
    for (size_t s = 0; s < agent->shard_count(); ++s) {
      const std::string gauge_name =
          agent->config().metric_prefix + "shard." + std::to_string(s) + ".bindings";
      if (const auto gauge = tb_.metrics.ReadValue(gauge_name);
          gauge.has_value() &&
          *gauge != static_cast<double>(agent->ShardBindingCount(s))) {
        report_.Add("shard-consistency", gauge_name + " gauge " +
                                             FormatMetricValue(*gauge) +
                                             " != shard table size");
      }
    }
  }
}

void OracleSuite::CheckQuietProbeLoss() {
  if (!spec_.traffic.probes) {
    return;
  }
  ++report_.checks;
  const auto& records = traffic_.probes().records();
  for (const auto& [from, to] : quiet_stretches_) {
    const Time lo = from + kQuietEntryMargin;
    const Time hi = to - kQuietExitMargin;
    if (hi <= lo) {
      continue;
    }
    for (const auto& [seq, rec] : records) {
      if (rec.sent_at < lo || rec.sent_at >= hi) {
        continue;
      }
      if (!rec.echoed_at.has_value()) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "probe #%u sent at %s in a quiet interval never echoed",
                      seq, FormatMs(rec.sent_at - start_).c_str());
        report_.Add("probe-conservation", buf);
      }
    }
  }
}

void OracleSuite::FinalStateOracles() {
  if (!settles_) {
    return;
  }
  const MobileHost& mh = *tb_.mobile;
  // Replicated runs judge terminal state against whichever agent ended up
  // serving; a permanently crashed primary's frozen table is not consulted.
  const HomeAgent& ha = *tb_.ServingAgent();
  const bool expect_home = spec_.ExpectsAtHomeTerminal();

  ++report_.checks;
  if (expect_home) {
    if (mh.state() != MobileHost::State::kAtHome) {
      report_.Add("registration-liveness",
                  "scenario settles at home but the MH never re-attached there");
    }
    for (const HomeAgent* agent : {tb_.home_agent.get(), tb_.backup_agent.get()}) {
      if (agent == nullptr || agent->crashed()) {
        continue;  // RAM died with the host; its table is not authoritative.
      }
      if (agent->HasBinding(Testbed::HomeAddress())) {
        report_.Add("binding-agreement", "MH is home but the HA still holds a binding");
      }
    }
  } else {
    if (mh.state() != MobileHost::State::kRegistered) {
      report_.Add("registration-liveness",
                  "scenario settles on a foreign net but the MH is not registered");
    } else {
      const auto binding = ha.GetBinding(Testbed::HomeAddress());
      if (!binding.has_value()) {
        report_.Add("binding-agreement", "MH believes it is registered but the HA has no binding");
      } else if (binding->care_of != mh.care_of()) {
        report_.Add("binding-agreement", "HA binding care-of " + binding->care_of.ToString() +
                                             " != MH care-of " + mh.care_of().ToString());
      }
    }
  }
}

void OracleSuite::TrafficOracles() {
  // Probe ledger: every probe sent is either echoed or lost — no
  // double-counted echoes.
  if (spec_.traffic.probes) {
    ++report_.checks;
    const ProbeSender& probes = traffic_.probes();
    if (probes.received() + probes.TotalLost() != probes.sent()) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "probe ledger: sent %" PRIu64 " != echoed %" PRIu64 " + lost %" PRIu64,
                    probes.sent(), probes.received(), probes.TotalLost());
      report_.Add("probe-conservation", buf);
    }
  }
  CheckQuietProbeLoss();

  if (spec_.traffic.tcp) {
    ++report_.checks;
    const TrafficHarness::TcpStats& tcp = traffic_.tcp();
    if (tcp.connect_failed) {
      report_.Add("tcp-delivery", "TCP-lite connect was reset (listener existed)");
    }
    if (!tcp.pattern_ok) {
      report_.Add("tcp-delivery",
                  "received byte stream diverged from the pattern (reorder/dup/loss)");
    }
    if (tcp.server_closed && tcp.server_received != spec_.traffic.tcp_bytes) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "FIN delivered after %" PRIu64 " of %u bytes", tcp.server_received,
                    spec_.traffic.tcp_bytes);
      report_.Add("tcp-delivery", buf);
    }
    if (settles_ && !tcp.server_closed) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "transfer never completed in a settling run (%" PRIu64 " of %u bytes)",
                    tcp.server_received, spec_.traffic.tcp_bytes);
      report_.Add("tcp-delivery", buf);
    }
  }

  // mpt-fallback: the triangle probe must leave a verified policy matching
  // its outcome, and a transit filter defeats the triangle route whenever the
  // probe has to cross it. The filter sits on the router's eth8/radio134
  // ingress, so a wired MH probing the internal CH (both on net-36.8) never
  // traverses it and may legitimately succeed.
  const TrafficHarness::TriangleResult& tri = traffic_.triangle();
  if (tri.fired) {
    ++report_.checks;
    const bool filter_on_path =
        spec_.transit_filter && (tri.on_radio || spec_.external_ch);
    if (!tri.done) {
      if (spec_.traffic.triangle_at + Seconds(4) <= spec_.duration) {
        report_.Add("mpt-fallback", "triangle probe callback never resolved");
      }
    } else {
      if (filter_on_path && tri.ok) {
        report_.Add("mpt-fallback", "triangle probe succeeded through a transit filter");
      }
      if (tri.ok && tri.policy_after != MobilePolicy::kTriangle) {
        report_.Add("mpt-fallback", std::string("successful probe left policy ") +
                                        MobilePolicyName(tri.policy_after));
      }
      if (!tri.ok && tri.policy_after != MobilePolicy::kTunnelHome) {
        report_.Add("mpt-fallback", std::string("failed probe did not fall back to tunneling: ") +
                                        MobilePolicyName(tri.policy_after));
      }
      if (!tri.ok && !filter_on_path && !tri.on_radio && spec_.faults.empty()) {
        report_.Add("mpt-fallback", "triangle probe failed with no filter and no faults");
      }
    }
  }
}

void OracleSuite::CounterOracles() {
  const MobileHost::Counters mh = tb_.mobile->counters();
  // Replicated runs account the pair as one logical HA: the MH's view must be
  // consistent with the sum of whatever both agents did across failovers.
  HomeAgent::Counters ha = tb_.home_agent->counters();
  if (tb_.backup_agent != nullptr) {
    const HomeAgent::Counters backup = tb_.backup_agent->counters();
    ha.registrations_accepted += backup.registrations_accepted;
    ha.packets_tunneled += backup.packets_tunneled;
    ha.reverse_decapsulated += backup.reverse_decapsulated;
  }

  ++report_.checks;
  if (mh.recoveries > mh.bindings_lost) {
    report_.Add("counter-consistency", "mh.recoveries > mh.bindings_lost");
  }
  // Frame duplication can replay registration traffic, which legitimately
  // perturbs the packet-count relations below; only assert them when the
  // scenario injected none.
  if (!SpecInjectsDuplicates(spec_)) {
    if (mh.registrations_accepted > ha.registrations_accepted) {
      report_.Add("counter-consistency",
                  "MH saw more accepted registrations than the HA issued");
    }
    if (mh.packets_decapsulated_in > ha.packets_tunneled) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "MH decapsulated %" PRIu64 " but HA only tunneled %" PRIu64,
                    mh.packets_decapsulated_in, ha.packets_tunneled);
      report_.Add("counter-consistency", buf);
    }
    if (ha.reverse_decapsulated > mh.packets_tunneled_out) {
      report_.Add("counter-consistency",
                  "HA reverse-decapsulated more than the MH reverse-tunneled");
    }
  }
}

void OracleSuite::FleetOracles() {
  if (fleet_ == nullptr || !settles_) {
    return;
  }
  const RegistrationLoadGenerator::Stats& stats = fleet_->stats();
  const uint64_t terminal = stats.accepted + stats.gave_up + stats.denied_other;

  // Ledger: by the settling window every client has converged — accepted, or
  // (only explicably) given up or terminally denied. A shortfall means some
  // client is wedged mid-backoff: a stuck shard queue or a lost-forever
  // registration, i.e. the admission path broke convergence.
  ++report_.checks;
  if (terminal != fleet_->client_count()) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "fleet ledger: %" PRIu64 " of %u clients terminal "
                  "(%" PRIu64 " accepted, %" PRIu64 " gave up, %" PRIu64 " denied)",
                  terminal, fleet_->client_count(), stats.accepted, stats.gave_up,
                  stats.denied_other);
    report_.Add("fleet-convergence", buf);
  }
  // Without faults every request is answered — accepted or admission-denied,
  // neither of which consumes the retransmit budget. The silent-drop path can
  // eat a few timeouts during the burst, but nowhere near the whole budget.
  if (spec_.faults.empty() && stats.gave_up > 0) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "%" PRIu64 " client(s) gave up with no faults scheduled", stats.gave_up);
    report_.Add("fleet-convergence", buf);
  }
  // Fresh identifications per send mean the HA never sees a replayed id unless
  // the scenario duplicates frames; any other terminal denial is a bug.
  if (!SpecInjectsDuplicates(spec_) && stats.denied_other > 0) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "%" PRIu64 " client(s) terminally denied without duplicate injection",
                  stats.denied_other);
    report_.Add("fleet-convergence", buf);
  }
}

void OracleSuite::Finish() {
  OnTick();  // One last live sample at the final instant.
  CloseQuietStretch(tb_.sim.Now());
  FinalStateOracles();
  TrafficOracles();
  CounterOracles();
  FleetOracles();

  // split-brain (per-epoch ledger): tunnel traffic for the home binding must
  // have come from exactly one agent in each epoch — even across partitions
  // and takeovers, where instantaneous dual-serving is transiently allowed.
  if (tb_.backup_agent != nullptr) {
    ++report_.checks;
    std::map<uint64_t, int> tunnel_sources;
    for (const HomeAgent* agent : {tb_.home_agent.get(), tb_.backup_agent.get()}) {
      for (const auto& [epoch, count] : agent->tunneled_by_epoch()) {
        if (count > 0) {
          ++tunnel_sources[epoch];
        }
      }
    }
    for (const auto& [epoch, sources] : tunnel_sources) {
      if (sources > 1) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "epoch %" PRIu64 " saw tunnel traffic from both home agents", epoch);
        report_.Add("split-brain", buf);
      }
    }
  }

  tb_.metrics.GetCounter("check.oracle_checks").Add(report_.checks);
  uint64_t total = 0;
  for (const auto& [oracle, v] : report_.violations) {
    total += v.count;
  }
  tb_.metrics.GetCounter("check.violations").Add(total);
}

}  // namespace msn
