# Empty compiler generated dependencies file for msn_tracing.
# This may be replaced when dependencies are built.
