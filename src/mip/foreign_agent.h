// Foreign agent — the extension the paper deliberately leaves out of its
// basic protocol but explicitly allows (§5.1: "there is nothing that prevents
// us from implementing or using foreign agents").
//
// The FA is a host on a visited network that serves as the care-of point for
// visiting mobile hosts that cannot (or prefer not to) obtain their own
// temporary address:
//
//  * it broadcasts periodic agent advertisements so visitors can find it;
//  * it relays registration requests (care-of = the FA's address) to the
//    visitor's home agent and relays replies back by link-layer address;
//  * it decapsulates tunnel packets from home agents and hands the inner
//    packets to visitors by MAC — the visitor needs no IP address at all on
//    the visited network;
//  * optionally (the A1 ablation knob), after a visitor departs it forwards
//    late tunnel packets to the visitor's new care-of address, using the
//    home agent's BindingUpdate notification — the packet-loss reduction the
//    paper's §5.1 weighs against the cost of deploying FAs everywhere.
#ifndef MSN_SRC_MIP_FOREIGN_AGENT_H_
#define MSN_SRC_MIP_FOREIGN_AGENT_H_

#include <map>
#include <memory>

#include "src/mip/ipip.h"
#include "src/mip/messages.h"
#include "src/node/node.h"
#include "src/node/udp.h"

namespace msn {

class ForeignAgent {
 public:
  struct Config {
    // The FA's address on its network (also the care-of address it offers).
    Ipv4Address address;
    NetDevice* device = nullptr;
    Duration advertisement_interval = Seconds(1);
    // How long after a departure late packets are still forwarded.
    Duration forward_grace = Seconds(10);
    // The A1 ablation knob: forward late tunnel packets to a departed
    // visitor's new care-of address.
    bool forward_after_departure = true;
  };

  struct Counters {
    uint64_t advertisements_sent = 0;
    uint64_t requests_relayed = 0;
    uint64_t replies_relayed = 0;
    uint64_t packets_delivered = 0;
    uint64_t packets_forwarded_after_departure = 0;
    uint64_t packets_buffered = 0;
    uint64_t packets_buffer_dropped = 0;  // Buffer overflow or grace expiry.
    uint64_t packets_dropped_unknown_visitor = 0;
    uint64_t binding_updates_received = 0;
  };

  // Maximum packets buffered per departing visitor (smooth hand-off).
  static constexpr size_t kMaxBufferedPackets = 64;

  ForeignAgent(Node& node, Config config);
  ~ForeignAgent();

  ForeignAgent(const ForeignAgent&) = delete;
  ForeignAgent& operator=(const ForeignAgent&) = delete;

  size_t visitor_count() const { return visitors_.size(); }
  bool HasVisitor(Ipv4Address home_address) const {
    return visitors_.find(home_address) != visitors_.end();
  }
  const Counters& counters() const { return counters_; }
  const Config& config() const { return config_; }

 private:
  struct Visitor {
    MacAddress mac;
    uint16_t reply_port = 0;  // Visitor's registration source port.
    Time registered_at;
  };
  struct ForwardEntry {
    Ipv4Address new_care_of;
    Time expires;
    // Packets held while the visitor's new care-of address is still unknown
    // (new_care_of == Any): the smooth-handoff buffer.
    std::vector<Ipv4Datagram> buffered;
  };

  void OnRegistrationTraffic(const std::vector<uint8_t>& data, const UdpSocket::Metadata& meta);
  void RelayRequest(const RegistrationRequest& request, const UdpSocket::Metadata& meta);
  void RelayReply(const RegistrationReply& reply);
  void HandleBindingUpdate(const BindingUpdate& update);
  bool OnTunnelPacket(const Ipv4Header& outer, const Ipv4Datagram& inner);
  void SendAdvertisement();
  void DeliverToVisitor(const Visitor& visitor, const Ipv4Datagram& dg);

  Node& node_;
  Config config_;
  std::unique_ptr<UdpSocket> socket_;
  std::unique_ptr<IpIpTunnelEndpoint> tunnel_;
  std::unique_ptr<PeriodicTask> advertiser_;
  std::map<Ipv4Address, Visitor> visitors_;
  std::map<Ipv4Address, ForwardEntry> forwards_;
  Counters counters_;
};

// Listens on a device for foreign-agent advertisements; used by a mobile
// host arriving on an unknown network before it has any IP address.
class AgentAdvertisementListener {
 public:
  using Handler = std::function<void(const AgentAdvertisement& adv, MacAddress fa_mac)>;

  AgentAdvertisementListener(Node& node, Handler handler);

 private:
  std::unique_ptr<UdpSocket> socket_;
  Handler handler_;
};

class MobileHost;

// Convenience: waits (up to `timeout`) for an agent advertisement on the
// device's network, then attaches through the discovered foreign agent.
// Calls done(false) if no advertisement is heard in time. The device must be
// up; no IP address is required.
void DiscoverAndAttachViaForeignAgent(MobileHost& mobile, NetDevice* device, Duration timeout,
                                      std::function<void(bool)> done);

}  // namespace msn

#endif  // MSN_SRC_MIP_FOREIGN_AGENT_H_
