#!/usr/bin/env python3
"""msn_analyze: AST-grade semantic static analysis for the MosquitoNet repo.

Where msn_lint.py pattern-matches source text, msn_analyze walks the real
clang AST of every translation unit in compile_commands.json, so it sees
through aliases, typedefs, using-declarations, and macro spellings. It
machine-checks the invariants the simulator's correctness story rests on
(DESIGN.md §13: same seed => byte-identical run) plus two API-hygiene rules:

  determinism/unordered-iteration
      Traversal of a std::unordered_{map,set,multimap,multiset} in src/
      (range-for or explicit begin()/cbegin() iteration). Hash-bucket order
      is unspecified and varies across libstdc++ versions and hash seeds;
      when it reaches behavior (packet delivery order, timer scheduling,
      snapshot serialization, metric export) it silently breaks the fuzzer's
      replay, ddmin shrinking, and pinned-corpus oracles. Order-insensitive
      reductions (sum/max over values, cancel-all teardown) carry an inline
      allow stating so.

  determinism/wall-clock
      A call whose *resolved callee* is an OS time source (time, clock,
      gettimeofday, clock_gettime, timespec_get, localtime, gmtime, mktime,
      strftime, or std::chrono::{system,steady,high_resolution}_clock::now)
      — including via aliases and using-declarations the regex rule could
      never see. All time flows from msn::Simulator::Now() (src/sim/time.h).

  determinism/ambient-rng
      A call or declaration whose resolved target is an ambient randomness
      source: std::rand/srand/random/*rand48, std::random_device, or any
      <random> engine (resolved through typedefs: std::mt19937 is caught as
      std::mersenne_twister_engine<...>). All randomness flows from the
      seeded msn::Rng (src/util/rng.h).

  api/nodiscard
      A fallible API missing [[nodiscard]]: returns std::optional<...> or a
      *Result/*Status/*Verdict type (any name), or returns bool with a
      fallibility-signalling name (Parse/Peek/Try/Send/Register/Bind/
      Resolve/Validate/Verify/Authenticate/Apply...). An ignored parse or
      bind result is exactly how PR 3's auth bypass survived review.

  lifetime/packet-span
      A member variable holding a raw byte pointer or byte span. Packet and
      EthernetFrame payloads live in COW pooled storage (DESIGN.md §12): a
      stored data()/span() result dangles when the buffer is released back
      to the pool or COW-isolated under it. Hold the owning Packet
      (refcounted) or copy the bytes; transient parsing views carry an
      inline allow stating so.

Backends
  ast      libclang via the python `clang.cindex` bindings (CI installs
           python3-clang-18 and runs with --require-ast). Needs either a
           compile_commands.json (-p BUILD_DIR) or explicit file paths with
           compiler args after `--`.
  lexical  Degraded stdlib-only fallback used automatically when libclang
           is unavailable (e.g. local containers without clang-18). Covers
           the same rule ids with textual approximations: it cannot resolve
           aliases, restricts api/nodiscard to headers (an attribute may
           legally live on the header declaration only), and approximates
           lifetime/packet-span by member naming convention (trailing '_').

Suppressing a finding
  Append `// msn-analyze: allow(<rule-id>)` to the offending line, or place
  it alone on the line above. Say why nearby. File-level exemptions live in
  FILE_ALLOWLIST below.

Usage
  tools/msn_analyze.py -p build                 # all TUs in compile db
  tools/msn_analyze.py [paths...]               # default: src/
  tools/msn_analyze.py --backend=ast f.cc -- -std=c++20 -Iinclude
  tools/msn_analyze.py --list-rules

Exit status: 0 clean, 1 findings, 2 usage error, 3 when --require-ast was
given but libclang is unavailable. Self-tested by tests/msn_analyze_test.py
(ctest), which skips AST cases gracefully where libclang is absent.
"""

from __future__ import annotations

import argparse
import json
import re
import shlex
import sys
from pathlib import Path

RULES = {
    "determinism/unordered-iteration":
        "iteration over an unordered container can leak hash-bucket order into behavior",
    "determinism/wall-clock":
        "resolved callee is an OS time source; use msn::Simulator::Now()",
    "determinism/ambient-rng":
        "resolved target is ambient randomness; draw from the seeded msn::Rng",
    "api/nodiscard":
        "fallible API (optional/Result/Status return, or bool with fallible name) "
        "missing [[nodiscard]]",
    "lifetime/packet-span":
        "member stores a raw byte pointer/span; COW packet storage may move or die under it",
}

# (rule-id, repo-relative path) pairs exempted wholesale. Prefer inline
# allows; use this only when a file trips a rule throughout by design.
FILE_ALLOWLIST: set[tuple[str, str]] = set()

ALLOW_RE = re.compile(r"//\s*msn-analyze:\s*allow\(([^)]+)\)")

UNORDERED_CONTAINERS = {
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset",
}

# Fully-qualified callee names (implementation namespaces like std::__1 or
# std::chrono::_V2 are stripped before matching).
BANNED_TIME_CALLEES = {
    "std::chrono::system_clock::now",
    "std::chrono::steady_clock::now",
    "std::chrono::high_resolution_clock::now",
    "time", "gettimeofday", "clock_gettime", "timespec_get", "clock",
    "localtime", "gmtime", "mktime", "strftime", "ftime", "timegm",
    "std::time", "std::clock", "std::localtime", "std::gmtime", "std::mktime",
    "std::strftime", "std::timespec_get",
}

BANNED_RNG_CALLEES = {
    "rand", "srand", "random", "srandom", "drand48", "lrand48", "mrand48",
    "std::rand", "std::srand",
}

# Matched against *canonical* type spellings, so typedef'd engines
# (std::mt19937 -> std::mersenne_twister_engine<...>) are caught.
RNG_TYPE_RE = re.compile(
    r"\bstd::(?:mersenne_twister_engine|linear_congruential_engine"
    r"|subtract_with_carry_engine|discard_block_engine"
    r"|independent_bits_engine|shuffle_order_engine|random_device)\b")

FALLIBLE_NAME_RE = re.compile(
    r"^(?:Parse|Peek|Try|Send|Register|Bind|Resolve|Validate|Verify"
    r"|Authenticate|Apply)(?:$|[A-Z_0-9])")

RESULT_TYPE_SUFFIXES = ("Result", "Status", "Verdict")

# Canonical spellings of raw byte views (uint8_t canonicalizes to
# unsigned char; std::byte stays std::byte).
BYTE_POINTER_RE = re.compile(
    r"^(?:const\s+)?(?:unsigned char|std::byte)\s*\*+$")
BYTE_SPAN_RE = re.compile(
    r"^std::span<\s*(?:const\s+)?(?:unsigned char|std::byte)\s*(?:,[^>]*)?>$")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def key(self):
        return (str(self.path), self.line, self.rule)

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line breaks."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state, i = "line_comment", i + 2
                out.append("  ")
                continue
            if c == "/" and nxt == "*":
                state, i = "block_comment", i + 2
                out.append("  ")
                continue
            if c == '"':
                state = "string"
            elif c == "'":
                state = "char"
            out.append(c if state == "code" else " ")
            i += 1
        elif state == "line_comment":
            out.append("\n" if c == "\n" else " ")
            if c == "\n":
                state = "code"
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state, i = "code", i + 2
                out.append("  ")
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
        else:  # string or char
            quote = '"' if state == "string" else "'"
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append("\n" if c == "\n" else " ")
            i += 1
    return "".join(out)


def allowed_lines(text: str) -> dict[int, set[str]]:
    """1-based line -> rule ids allowed there. A standalone allow comment
    also covers the line below it."""
    allows: dict[int, set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",")}
        allows.setdefault(lineno, set()).update(rules)
        if line.strip().startswith("//"):
            allows.setdefault(lineno + 1, set()).update(rules)
    return allows


class Reporter:
    """Collects findings, applying suppressions and cross-TU deduplication."""

    def __init__(self, root: Path):
        self.root = root.resolve()
        self.findings: list[Finding] = []
        self._seen: set[tuple] = set()
        self._allow_cache: dict[str, dict[int, set[str]]] = {}

    def _allows_for(self, path: Path) -> dict[int, set[str]]:
        key = str(path)
        if key not in self._allow_cache:
            try:
                text = path.read_text(encoding="utf-8", errors="replace")
            except OSError:
                text = ""
            self._allow_cache[key] = allowed_lines(text)
        return self._allow_cache[key]

    def rel(self, path: Path) -> Path:
        try:
            return path.resolve().relative_to(self.root)
        except ValueError:
            return path

    def in_scope(self, path: Path) -> bool:
        return self.rel(path).parts[:1] == ("src",)

    def report(self, path: Path, line: int, rule: str, message: str) -> None:
        rel = self.rel(path)
        if (rule, str(rel)) in FILE_ALLOWLIST:
            return
        if rule in self._allows_for(path).get(line, set()):
            return
        f = Finding(rel, line, rule, message)
        if f.key() in self._seen:
            return
        self._seen.add(f.key())
        self.findings.append(f)


# --- AST backend (libclang via clang.cindex) --------------------------------

def load_cindex(libclang_hint: str | None = None):
    """Returns a working clang.cindex module, or None with a reason string."""
    try:
        from clang import cindex
    except ImportError:
        return None, "python clang bindings (clang.cindex) not importable"
    candidates = []
    if libclang_hint:
        candidates.append(libclang_hint)
    import os
    env = os.environ.get("MSN_LIBCLANG")
    if env:
        candidates.append(env)
    candidates.append(None)  # Default search.
    import glob
    for pattern in ("/usr/lib/llvm-*/lib/libclang-*.so*",
                    "/usr/lib/llvm-*/lib/libclang.so*",
                    "/usr/lib/x86_64-linux-gnu/libclang-*.so*"):
        candidates.extend(sorted(glob.glob(pattern), reverse=True))
    last_err = "no libclang shared library found"
    for cand in candidates:
        try:
            if cand is not None:
                cindex.Config.library_file = cand
            idx = cindex.Index.create()
            del idx
            return cindex, None
        except Exception as e:  # LibclangError, OSError
            last_err = str(e).splitlines()[0] if str(e) else repr(e)
            # Config caches the loaded library handle; reset for next probe.
            cindex.Config.loaded = False
            cindex.conf = cindex.Config()
            continue
    return None, f"libclang not loadable ({last_err})"


def _qualified_name(cindex, cursor) -> str:
    """Fully qualified name with implementation namespaces (__1, _V2,
    __cxx11, ...) stripped, so libstdc++/libc++ spellings normalize."""
    parts = []
    c = cursor
    while c is not None and c.kind != cindex.CursorKind.TRANSLATION_UNIT:
        spelling = c.spelling
        if spelling and not spelling.startswith("_"):
            parts.append(spelling)
        c = c.semantic_parent
    return "::".join(reversed(parts))


def _canonical_type_spelling(cursor) -> str:
    try:
        return cursor.type.get_canonical().spelling
    except Exception:
        return ""


def _is_unordered_canonical(spelling: str) -> bool:
    return any(f"{name}<" in spelling for name in UNORDERED_CONTAINERS)


class AstAnalyzer:
    def __init__(self, cindex, reporter: Reporter, verbose: bool = False):
        self.cindex = cindex
        self.reporter = reporter
        self.verbose = verbose
        self.index = cindex.Index.create()
        self._nodiscard_seen: set[tuple] = set()

    def analyze(self, source: Path, args: list[str]) -> bool:
        """Parses one TU and walks it. Returns False on a parse failure."""
        ci = self.cindex
        try:
            tu = self.index.parse(str(source), args=args)
        except ci.TranslationUnitLoadError as e:
            print(f"msn_analyze: failed to parse {source}: {e}", file=sys.stderr)
            return False
        fatal = [d for d in tu.diagnostics if d.severity >= ci.Diagnostic.Fatal]
        if fatal and self.verbose:
            for d in fatal[:5]:
                print(f"msn_analyze: {source}: {d.spelling}", file=sys.stderr)
        self._walk(tu.cursor)
        return not fatal

    # -- cursor dispatch -----------------------------------------------------

    def _location(self, cursor):
        loc = cursor.location
        if loc.file is None:
            return None, 0
        return Path(loc.file.name), loc.line

    def _walk(self, cursor) -> None:
        ci = self.cindex
        for child in cursor.get_children():
            path, line = self._location(child)
            in_scope = path is not None and self.reporter.in_scope(path)
            # Recurse into out-of-scope containers anyway: a src/ header's
            # declarations appear under the TU cursor wherever parsed from.
            if in_scope:
                kind = child.kind
                if kind == ci.CursorKind.CXX_FOR_RANGE_STMT:
                    self._check_range_for(child, path, line)
                elif kind == ci.CursorKind.CALL_EXPR:
                    self._check_call(child, path, line)
                elif kind == ci.CursorKind.DECL_REF_EXPR:
                    self._check_decl_ref(child, path, line)
                elif kind in (ci.CursorKind.VAR_DECL, ci.CursorKind.FIELD_DECL):
                    self._check_var_or_field(child, path, line)
                elif kind in (ci.CursorKind.FUNCTION_DECL, ci.CursorKind.CXX_METHOD):
                    self._check_nodiscard(child, path, line)
            self._walk(child)

    # -- determinism/unordered-iteration --------------------------------------

    def _check_range_for(self, cursor, path, line) -> None:
        ci = self.cindex
        for child in cursor.get_children():
            if child.kind == ci.CursorKind.COMPOUND_STMT:
                continue  # Loop body.
            spelling = _canonical_type_spelling(child)
            if _is_unordered_canonical(spelling):
                self.reporter.report(
                    path, line, "determinism/unordered-iteration",
                    "range-for over an unordered container — hash-bucket order is "
                    "not part of the deterministic-replay contract; use a sorted/"
                    "insertion-ordered container, or allow() an order-insensitive "
                    "reduction")
                return

    def _check_call(self, cursor, path, line) -> None:
        ci = self.cindex
        ref = cursor.referenced
        if ref is None:
            return
        name = ref.spelling
        # Explicit iterator traversal: .begin()/.cbegin() on an unordered
        # container (the range-for's hidden begin call dedups onto the same
        # line as the range-for finding).
        if name in ("begin", "cbegin"):
            parent = ref.semantic_parent
            if parent is not None and parent.spelling in UNORDERED_CONTAINERS:
                self.reporter.report(
                    path, line, "determinism/unordered-iteration",
                    "begin() on an unordered container starts a hash-order "
                    "traversal; use a sorted/insertion-ordered container, or "
                    "allow() an order-insensitive reduction")
                return
        qname = _qualified_name(ci, ref)
        if qname in BANNED_TIME_CALLEES:
            self.reporter.report(
                path, line, "determinism/wall-clock",
                f"call resolves to '{qname}', an OS time source; all simulation "
                "time flows from msn::Simulator::Now()")
            return
        if qname in BANNED_RNG_CALLEES:
            self.reporter.report(
                path, line, "determinism/ambient-rng",
                f"call resolves to '{qname}'; draw from the owning component's "
                "seeded msn::Rng instead")
            return
        # Construction of a <random> engine / random_device (typedefs
        # resolve via the constructor's parent class canonical name).
        if ref.kind == ci.CursorKind.CONSTRUCTOR:
            parent = ref.semantic_parent
            if parent is not None and RNG_TYPE_RE.search(
                    _canonical_type_spelling(parent)):
                self.reporter.report(
                    path, line, "determinism/ambient-rng",
                    f"constructs '{_canonical_type_spelling(parent)}'; ambient "
                    "RNG engines are not seed-reproducible — use msn::Rng")

    def _check_decl_ref(self, cursor, path, line) -> None:
        ref = cursor.referenced
        if ref is None or ref.kind != self.cindex.CursorKind.FUNCTION_DECL:
            return
        qname = _qualified_name(self.cindex, ref)
        if qname in BANNED_TIME_CALLEES:
            self.reporter.report(
                path, line, "determinism/wall-clock",
                f"reference to '{qname}', an OS time source; all simulation time "
                "flows from msn::Simulator::Now()")
        elif qname in BANNED_RNG_CALLEES:
            self.reporter.report(
                path, line, "determinism/ambient-rng",
                f"reference to '{qname}'; draw from the owning component's "
                "seeded msn::Rng instead")

    # -- determinism/ambient-rng (typed declarations) + lifetime/packet-span --

    def _check_var_or_field(self, cursor, path, line) -> None:
        ci = self.cindex
        spelling = _canonical_type_spelling(cursor)
        if RNG_TYPE_RE.search(spelling):
            self.reporter.report(
                path, line, "determinism/ambient-rng",
                f"declares '{cursor.spelling}' of ambient RNG type "
                f"'{spelling}'; use the seeded msn::Rng")
            return
        if cursor.kind == ci.CursorKind.FIELD_DECL:
            if BYTE_POINTER_RE.match(spelling) or BYTE_SPAN_RE.match(spelling):
                self.reporter.report(
                    path, line, "lifetime/packet-span",
                    f"member '{cursor.spelling}' holds a raw byte view; packet "
                    "storage is COW-pooled (DESIGN.md §12) and may be released "
                    "or isolated under it — hold the owning Packet or copy; "
                    "allow() transient parsing views")

    # -- api/nodiscard ---------------------------------------------------------

    def _decl_has_nodiscard(self, cursor) -> bool:
        name = cursor.spelling
        for token in cursor.get_tokens():
            if token.spelling == name and token.kind.name == "IDENTIFIER":
                return False
            if token.spelling in ("nodiscard", "warn_unused_result", "__wur"):
                return True
        return False

    def _check_nodiscard(self, cursor, path, line) -> None:
        ci = self.cindex
        name = cursor.spelling
        if not name or name.startswith("operator") or name == "main":
            return
        canonical = cursor.canonical
        cpath, cline = self._location(canonical)
        key = (str(cpath), cline, canonical.spelling)
        if key in self._nodiscard_seen:
            return
        # Judge the canonical (first) declaration: the attribute may legally
        # appear there alone, and redeclarations inherit the semantics.
        if cpath is None or not self.reporter.in_scope(cpath):
            return
        result = canonical.result_type.get_canonical()
        rspell = result.spelling
        fallible = False
        if rspell.startswith("std::optional<"):
            fallible = True
        elif rspell == "bool" and FALLIBLE_NAME_RE.match(name):
            fallible = True
        else:
            decl = result.get_declaration()
            if decl is not None and decl.spelling and \
                    decl.spelling.endswith(RESULT_TYPE_SUFFIXES):
                fallible = True
        if not fallible:
            return
        self._nodiscard_seen.add(key)
        if self._decl_has_nodiscard(canonical):
            return
        self.reporter.report(
            cpath, cline, "api/nodiscard",
            f"'{name}' returns {rspell} but is not [[nodiscard]]; an ignored "
            "result here is a silent protocol failure")


# --- Lexical fallback backend ------------------------------------------------

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*?>\s+(\w+)\s*[;={]",
    re.DOTALL)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;()]*?:\s*(?:\w+(?:\.|->))*(\w+)\s*\)")
BEGIN_CALL_RE = re.compile(r"\b(\w+)\s*\.\s*c?begin\s*\(")

# Anchored to a statement/declaration boundary rather than line start, so
# one-line class bodies (`struct P { bool Parse(int); };`) still match.
LEX_NODISCARD_RE = re.compile(
    r"(?:^|[{};])\s*(?:virtual\s+)?(?:static\s+)?(?:constexpr\s+)?"
    r"(bool|std::optional<[^;{(]*?>|\w+(?:Result|Status|Verdict))"
    r"\s+(\w+)\s*\(")

LEX_BYTE_FIELD_RE = re.compile(
    r"(?:^|[{};])\s*(?:const\s+)?(?:std::)?(?:uint8_t|byte)\s*\*\s*(\w+_)\s*(?:=[^;]*)?;"
    r"|(?:^|[{};])\s*std::span<\s*(?:const\s+)?(?:std::)?(?:uint8_t|byte)\s*>\s+(\w+_)\s*;")


class LexicalAnalyzer:
    """Degraded textual approximation of the AST rules, for environments
    without libclang. Shares rule ids and suppression syntax."""

    def __init__(self, reporter: Reporter):
        self.reporter = reporter

    def analyze_files(self, files: list[Path]) -> None:
        texts: dict[Path, str] = {}
        unordered_names: set[str] = set()
        for f in files:
            text = f.read_text(encoding="utf-8", errors="replace")
            code = strip_comments_and_strings(text)
            texts[f] = code
            for m in UNORDERED_DECL_RE.finditer(code):
                unordered_names.add(m.group(1))
        # Import msn_lint lazily for its battle-tested determinism regexes.
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        import msn_lint
        for f, code in texts.items():
            if not self.reporter.in_scope(f):
                continue
            lines = code.splitlines()
            self._check_unordered(f, code, unordered_names)
            for lineno, line in enumerate(lines, start=1):
                if m := msn_lint.WALL_CLOCK_RE.search(line):
                    self.reporter.report(
                        f, lineno, "determinism/wall-clock",
                        f"'{m.group(0).strip()}' bypasses the simulator clock "
                        "(lexical fallback); use msn::Simulator::Now()")
                if m := msn_lint.AMBIENT_RNG_RE.search(line):
                    self.reporter.report(
                        f, lineno, "determinism/ambient-rng",
                        f"'{m.group(0).strip()}' is not seed-reproducible "
                        "(lexical fallback); use the seeded msn::Rng")
            if f.suffix == ".h":
                self._check_nodiscard(f, lines)
                self._check_byte_fields(f, lines)

    def _check_unordered(self, f: Path, code: str, names: set[str]) -> None:
        for regex, what in ((RANGE_FOR_RE, "range-for over"),
                            (BEGIN_CALL_RE, "begin() on")):
            for m in regex.finditer(code):
                if m.group(1) not in names:
                    continue
                lineno = code.count("\n", 0, m.start()) + 1
                self.reporter.report(
                    f, lineno, "determinism/unordered-iteration",
                    f"{what} '{m.group(1)}', declared as an unordered container "
                    "— hash-bucket order is not part of the deterministic-replay "
                    "contract; use sorted/insertion-ordered traversal or allow() "
                    "an order-insensitive reduction")

    def _check_nodiscard(self, f: Path, lines: list[str]) -> None:
        for lineno, line in enumerate(lines, start=1):
            for m in LEX_NODISCARD_RE.finditer(line):
                rtype, name = m.group(1), m.group(2)
                if rtype == "bool" and not FALLIBLE_NAME_RE.match(name):
                    continue
                if name.startswith("operator") or name == "main":
                    continue
                window = lines[max(0, lineno - 2):lineno]
                if any("nodiscard" in w for w in window):
                    continue
                self.reporter.report(
                    f, lineno, "api/nodiscard",
                    f"'{name}' returns {rtype} but is not [[nodiscard]] "
                    "(lexical fallback, headers only)")

    def _check_byte_fields(self, f: Path, lines: list[str]) -> None:
        for lineno, line in enumerate(lines, start=1):
            for m in LEX_BYTE_FIELD_RE.finditer(line):
                name = m.group(1) or m.group(2)
                self.reporter.report(
                    f, lineno, "lifetime/packet-span",
                    f"member '{name}' holds a raw byte view; packet storage is "
                    "COW-pooled and may be released or isolated under it — hold "
                    "the owning Packet or copy; allow() transient parsing views")


# --- Drivers -----------------------------------------------------------------

def load_compile_commands(build_dir: Path) -> list[dict]:
    db = build_dir / "compile_commands.json"
    if not db.is_file():
        raise FileNotFoundError(db)
    return json.loads(db.read_text())


def compile_args_for(entry: dict) -> list[str]:
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = shlex.split(entry["command"])
    out: list[str] = []
    skip_next = False
    src = entry["file"]
    for i, a in enumerate(argv):
        if i == 0:
            continue  # The compiler binary.
        if skip_next:
            skip_next = False
            continue
        if a in ("-c", src) or a.endswith(src):
            continue
        if a in ("-o", "-MF", "-MT", "-MQ"):
            skip_next = True
            continue
        if a in ("-MD", "-MMD", "-MP"):
            continue
        out.append(a)
    return out


def collect_files(root: Path, paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        path = (root / p) if not Path(p).is_absolute() else Path(p)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.h")))
            files.extend(sorted(path.rglob("*.cc")))
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(p)
    return files


def run_ast(cindex, root: Path, build_dir: Path | None, paths: list[str],
            extra_args: list[str], verbose: bool) -> list[Finding]:
    reporter = Reporter(root)
    analyzer = AstAnalyzer(cindex, reporter, verbose=verbose)
    if build_dir is not None:
        entries = load_compile_commands(build_dir)
        wanted = None
        if paths:
            wanted = [str((root / p).resolve()) for p in paths]
        for entry in entries:
            src = Path(entry["directory"], entry["file"]).resolve()
            if not reporter.in_scope(src):
                continue
            if wanted and not any(str(src).startswith(w) for w in wanted):
                continue
            analyzer.analyze(src, compile_args_for(entry))
    else:
        for f in collect_files(root, paths or ["src"]):
            if f.suffix != ".cc" and not paths:
                continue  # Headers ride in via their TUs in default mode.
            # `-x c++` so standalone .h fixtures parse as C++ too.
            analyzer.analyze(
                f, ["-x", "c++", "-std=c++20", f"-I{root}"] + extra_args)
    return reporter.findings


def run_lexical(root: Path, paths: list[str]) -> list[Finding]:
    reporter = Reporter(root)
    LexicalAnalyzer(reporter).analyze_files(collect_files(root, paths or ["src"]))
    return reporter.findings


def main(argv: list[str]) -> int:
    if "--" in argv:
        split = argv.index("--")
        argv, extra_args = argv[:split], argv[split + 1:]
    else:
        extra_args = []
    parser = argparse.ArgumentParser(
        prog="msn_analyze.py", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*",
                        help="files or directories to analyze (default: src/; "
                             "with -p, filters the compile db)")
    parser.add_argument("-p", "--build-dir", default=None,
                        help="build dir containing compile_commands.json")
    parser.add_argument("--root",
                        default=str(Path(__file__).resolve().parent.parent),
                        help="repository root")
    parser.add_argument("--backend", choices=("auto", "ast", "lexical"),
                        default="auto")
    parser.add_argument("--require-ast", action="store_true",
                        help="exit 3 instead of degrading when libclang is "
                             "unavailable (CI uses this)")
    parser.add_argument("--libclang", default=None,
                        help="explicit libclang shared library path")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted(RULES.items()):
            print(f"{rule:34} {desc}")
        return 0

    root = Path(args.root).resolve()
    backend = args.backend
    cindex = None
    if backend in ("auto", "ast"):
        cindex, reason = load_cindex(args.libclang)
        if cindex is None:
            if args.require_ast or backend == "ast":
                print(f"msn_analyze: AST backend unavailable: {reason}",
                      file=sys.stderr)
                return 3
            print(f"msn_analyze: {reason}; degrading to the lexical fallback "
                  "(aliases and typedefs will not be resolved)", file=sys.stderr)
            backend = "lexical"
        else:
            backend = "ast"

    try:
        if backend == "ast":
            build_dir = Path(args.build_dir) if args.build_dir else None
            if build_dir is not None and not build_dir.is_absolute():
                build_dir = root / build_dir
            findings = run_ast(cindex, root, build_dir, args.paths,
                               extra_args, args.verbose)
        else:
            findings = run_lexical(root, args.paths)
    except FileNotFoundError as e:
        print(f"msn_analyze: no such path: {e}", file=sys.stderr)
        return 2

    findings.sort(key=lambda f: (str(f.path), f.line, f.rule))
    for f in findings:
        print(f)
    if findings:
        print(f"msn_analyze: {len(findings)} finding(s) in "
              f"{len({str(f.path) for f in findings})} file(s) "
              f"[{backend} backend]", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
