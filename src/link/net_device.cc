#include "src/link/net_device.h"

#include <algorithm>
#include <utility>

#include "src/net/datapath_tuning.h"
#include "src/telemetry/metrics.h"
#include "src/util/logging.h"

namespace msn {

NetDevice::NetDevice(Simulator& sim, std::string name, MacAddress mac)
    : sim_(sim), name_(std::move(name)), mac_(mac) {}

void NetDevice::BindQueueDepthGauge(Gauge* gauge) {
  queue_depth_gauge_ = gauge;
  UpdateQueueDepthGauge();
}

void NetDevice::UpdateQueueDepthGauge() {
  if (queue_depth_gauge_ != nullptr) {
    queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
  }
}

void NetDevice::BringUp(std::function<void()> done) {
  if (state_ == State::kUp) {
    if (done) {
      done();
    }
    return;
  }
  if (state_ == State::kBringingUp) {
    // A second caller piggybacks on the in-flight bring-up by polling at the
    // same deadline; keep it simple and just schedule after the mean time.
    MSN_WARN("link", "%s: BringUp while already bringing up", name_.c_str());
  }
  state_ = State::kBringingUp;
  const uint64_t generation = ++bring_up_generation_;
  const double mean_ns = static_cast<double>(bring_up_time_.nanos());
  const double jitter_ns = mean_ns * bring_up_jitter_;
  const Duration delay = Duration::FromNanos(static_cast<int64_t>(
      sim_.rng().NormalAtLeast(mean_ns, jitter_ns, mean_ns * 0.25)));
  MSN_DEBUG("link", "%s: bringing up (%.1fms)", name_.c_str(), delay.ToMillisF());
  sim_.Schedule(delay, [this, generation, done = std::move(done)] {
    if (generation != bring_up_generation_ || state_ != State::kBringingUp) {
      return;  // TakeDown() raced with the bring-up.
    }
    state_ = State::kUp;
    MSN_DEBUG("link", "%s: up", name_.c_str());
    if (done) {
      done();
    }
  });
}

void NetDevice::TakeDown() {
  ++bring_up_generation_;
  state_ = State::kDown;
  queue_.clear();
  UpdateQueueDepthGauge();
  transmitting_ = false;
  MSN_DEBUG("link", "%s: down", name_.c_str());
}

Duration NetDevice::SerializationDelay(size_t wire_bytes) const {
  const uint64_t bps = bandwidth_bps();
  if (bps == 0) {
    return Duration();
  }
  const double seconds = static_cast<double>(wire_bytes) * 8.0 / static_cast<double>(bps);
  return SecondsF(seconds);
}

bool NetDevice::Transmit(const EthernetFrame& frame) {
  if (state_ != State::kUp) {
    ++counters_.dropped_down;
    return false;
  }
  if (queue_.size() >= queue_capacity_) {
    ++counters_.dropped_queue;
    return false;
  }
  queue_.push_back(frame);
  UpdateQueueDepthGauge();
  if (!transmitting_) {
    StartNextTransmission();
  }
  return true;
}

void NetDevice::StartNextTransmission() {
  if (queue_.empty() || state_ != State::kUp) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  // Burst dequeue: frames with no serialization time (bandwidth 0, e.g. the
  // encapsulating VIF) all complete "now", so one scheduled event drains up
  // to device_burst_max of them — event-engine overhead once per burst
  // instead of once per frame. Per-frame work (counters, tap, SendToMedium)
  // still happens frame by frame in FIFO order, so traces are unchanged.
  // Frames with real serialization time never coalesce: their completion
  // times are distinct by construction.
  if (GlobalDatapathTuning().device_burst && bandwidth_bps() == 0) {
    const uint64_t generation = bring_up_generation_;
    sim_.Schedule(Duration(), [this, generation] {
      if (generation != bring_up_generation_ || state_ != State::kUp) {
        return;  // Interface went down mid-transmission.
      }
      const size_t max_burst =
          std::max<size_t>(1, GlobalDatapathTuning().device_burst_max);
      size_t drained = 0;
      while (!queue_.empty() && drained < max_burst) {
        EthernetFrame frame = std::move(queue_.front());
        queue_.pop_front();
        ++drained;
        ++counters_.tx_frames;
        counters_.tx_bytes += frame.WireSize();
        NotifyTap(frame, TapDirection::kTransmit);
        SendToMedium(frame);
        if (state_ != State::kUp) {
          break;  // A receiver's synchronous reaction took us down.
        }
      }
      ++counters_.tx_bursts;
      counters_.tx_burst_frames += drained;
      UpdateQueueDepthGauge();
      StartNextTransmission();
    });
    return;
  }
  EthernetFrame frame = std::move(queue_.front());
  queue_.pop_front();
  UpdateQueueDepthGauge();
  const Duration delay = SerializationDelay(frame.WireSize());
  const uint64_t generation = bring_up_generation_;
  sim_.Schedule(delay, [this, generation, frame = std::move(frame)] {
    if (generation != bring_up_generation_ || state_ != State::kUp) {
      return;  // Interface went down mid-transmission.
    }
    ++counters_.tx_frames;
    counters_.tx_bytes += frame.WireSize();
    NotifyTap(frame, TapDirection::kTransmit);
    SendToMedium(frame);
    StartNextTransmission();
  });
}

void NetDevice::DeliverFrame(EthernetFrame&& frame) {
  if (state_ != State::kUp) {
    ++counters_.dropped_rx_down;
    return;
  }
  ++counters_.rx_frames;
  counters_.rx_bytes += frame.WireSize();
  NotifyTap(frame, TapDirection::kReceive);
  if (receive_handler_) {
    receive_handler_(*this, std::move(frame));
  }
}

}  // namespace msn
