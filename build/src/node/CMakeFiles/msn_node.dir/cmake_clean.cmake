file(REMOVE_RECURSE
  "CMakeFiles/msn_node.dir/arp.cc.o"
  "CMakeFiles/msn_node.dir/arp.cc.o.d"
  "CMakeFiles/msn_node.dir/icmp.cc.o"
  "CMakeFiles/msn_node.dir/icmp.cc.o.d"
  "CMakeFiles/msn_node.dir/ip_stack.cc.o"
  "CMakeFiles/msn_node.dir/ip_stack.cc.o.d"
  "CMakeFiles/msn_node.dir/node.cc.o"
  "CMakeFiles/msn_node.dir/node.cc.o.d"
  "CMakeFiles/msn_node.dir/reassembly.cc.o"
  "CMakeFiles/msn_node.dir/reassembly.cc.o.d"
  "CMakeFiles/msn_node.dir/routing_table.cc.o"
  "CMakeFiles/msn_node.dir/routing_table.cc.o.d"
  "CMakeFiles/msn_node.dir/udp.cc.o"
  "CMakeFiles/msn_node.dir/udp.cc.o.d"
  "libmsn_node.a"
  "libmsn_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msn_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
