#include "src/telemetry/packet_probes.h"

#include "src/net/packet.h"
#include "src/util/buffer_pool.h"

namespace msn {

void RegisterPacketPathProbes(MetricsRegistry& registry) {
  registry.GetProbeGauge("packet.copies", [] {
    return static_cast<double>(Packet::stats().copies);
  });
  registry.GetProbeGauge("packet.cow_breaks", [] {
    return static_cast<double>(Packet::stats().cow_breaks);
  });
  registry.GetProbeGauge("packet.allocations", [] {
    return static_cast<double>(Packet::stats().allocations);
  });
  registry.GetProbeGauge("pool.hits", [] {
    return static_cast<double>(DefaultBufferPool().stats().hits);
  });
  registry.GetProbeGauge("pool.misses", [] {
    return static_cast<double>(DefaultBufferPool().stats().misses);
  });
  registry.GetProbeGauge("pool.oversize", [] {
    return static_cast<double>(DefaultBufferPool().stats().oversize);
  });
  registry.GetProbeGauge("pool.released", [] {
    return static_cast<double>(DefaultBufferPool().stats().released);
  });
  registry.GetProbeGauge("pool.discarded", [] {
    return static_cast<double>(DefaultBufferPool().stats().discarded);
  });
  registry.GetProbeGauge("pool.outstanding", [] {
    return static_cast<double>(DefaultBufferPool().stats().outstanding);
  });
  registry.GetProbeGauge("pool.free_blocks", [] {
    return static_cast<double>(DefaultBufferPool().stats().free_blocks);
  });
}

}  // namespace msn
