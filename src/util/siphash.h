// SipHash-2-4: a keyed 64-bit MAC (Aumasson & Bernstein). Used to
// authenticate mobile-IP registration messages, standing in for the
// "S-key, Kerberos, PGP, or some other similar strong authentication
// mechanism" the paper calls for (§5.1).
#ifndef MSN_SRC_UTIL_SIPHASH_H_
#define MSN_SRC_UTIL_SIPHASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace msn {

struct SipHashKey {
  uint64_t k0 = 0;
  uint64_t k1 = 0;

  auto operator<=>(const SipHashKey&) const = default;
};

// SipHash-2-4 of `data` under `key`.
[[nodiscard]] uint64_t SipHash24(const SipHashKey& key, const uint8_t* data, size_t len);
[[nodiscard]] uint64_t SipHash24(const SipHashKey& key, const std::vector<uint8_t>& data);

}  // namespace msn

#endif  // MSN_SRC_UTIL_SIPHASH_H_
