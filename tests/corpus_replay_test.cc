// Replays every checked-in fuzzer scenario under tests/corpus/ and requires
// a clean oracle report. Each corpus file pins a scenario shape that once
// exercised a subtle recovery path (see the comment at the top of each
// file); a violation here means a regression in the simulator or an oracle
// that grew too eager. MSN_CORPUS_DIR is injected by CMake.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/check/fuzzer.h"
#include "src/check/scenario_gen.h"

namespace msn {
namespace {

std::vector<std::filesystem::path> CorpusFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(MSN_CORPUS_DIR)) {
    if (entry.path().extension() == ".seed") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(CorpusReplayTest, EveryCorpusScenarioRunsClean) {
  const auto files = CorpusFiles();
  ASSERT_GE(files.size(), 3u) << "corpus went missing from " << MSN_CORPUS_DIR;
  for (const auto& path : files) {
    std::ifstream in(path);
    ASSERT_TRUE(in) << path;
    std::stringstream buffer;
    buffer << in.rdbuf();

    std::string error;
    const auto spec = ScenarioSpec::Parse(buffer.str(), &error);
    ASSERT_TRUE(spec.has_value()) << path << ": " << error;

    const RunResult result = RunScenario(*spec);
    EXPECT_FALSE(result.failed()) << path << "\n" << result.FailureReport();
    EXPECT_GT(result.report.checks, 0u) << path;
  }
}

TEST(CorpusReplayTest, CorpusSpecsAreNormalized) {
  // A corpus file that NormalizeSpec would rewrite is silently testing a
  // different scenario than its text claims; keep them fixed points.
  for (const auto& path : CorpusFiles()) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const auto spec = ScenarioSpec::Parse(buffer.str());
    ASSERT_TRUE(spec.has_value()) << path;
    EXPECT_EQ(NormalizeSpec(*spec).ToString(), spec->ToString()) << path;
  }
}

}  // namespace
}  // namespace msn
