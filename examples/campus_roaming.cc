// Campus roaming: the physical mobility subsystem end to end (DESIGN.md §15).
//
// A mobile host walks a 600 m corridor of alternating wired drop zones and
// Metricom radio cells under a random-waypoint model. Nothing is scripted:
// the mobility driver turns the host's position into per-medium loss, RSSI,
// and latency every 250 ms, and the signal-aware movement detector decides
// every handoff from what the "hardware" reports — hot-switching between
// cells as coverage shifts, re-registering with the home agent each time,
// while a correspondent outside the campus streams datagrams at the home
// address the whole way.
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/mip/movement_detector.h"
#include "src/mobility/mobility_driver.h"
#include "src/node/udp.h"
#include "src/topo/testbed.h"
#include "src/util/assert.h"

using namespace msn;

int main() {
  std::printf("=== Campus roaming: motion-driven handoff (DESIGN.md S15) ===\n\n");

  TestbedConfig cfg;
  cfg.seed = 3;
  cfg.external_ch = true;
  Testbed tb(cfg);
  FaultInjector inject_wired(tb.sim, *tb.net8, &tb.metrics);
  FaultInjector inject_radio(tb.sim, *tb.radio134, &tb.metrics);
  tb.StartMobileAtHome();
  tb.StartMobileOnWired(50);

  // A 600x200 m corridor: wired drop zones (60 m reach) alternating with
  // radio cells (120 m reach), and a 1.5 m/s stroll between random waypoints.
  CampusMap map = CampusMap::Corridor(600.0, 200.0, 4, 60.0, 120.0);
  const Vec2 start = map.base_stations().front().position;
  RandomWaypointModel::Params wp;
  wp.min_speed_mps = 1.0;
  wp.max_speed_mps = 2.0;
  wp.max_pause = Seconds(2);
  auto walk = std::make_unique<RandomWaypointModel>(Vec2{600.0, 200.0}, start, wp,
                                                    Rng(cfg.seed).Fork("walk"));

  MovementDetector::Config mc;
  mc.use_signal = true;  // Hand off on fading RSSI, before probes die.
  mc.min_residency = Seconds(3);
  mc.metrics = &tb.metrics;
  MovementDetector detector(*tb.mobile, mc);
  detector.AddCandidate({tb.WiredAttachment(50), /*preference=*/2});
  detector.AddCandidate({tb.WirelessAttachment(50), /*preference=*/1});
  detector.SetAttachmentChangeHandler([&](const LinkCharacteristics& link, bool registered) {
    std::printf("  [detector] t=%.1fs now on %s (loss %.2f, registered=%s)\n",
                tb.sim.Now().ToSecondsF(), link.device_name.c_str(), link.loss_estimate,
                registered ? "yes" : "no");
  });

  MobilityDriver::Config dc;
  dc.detector = &detector;
  dc.metrics = &tb.metrics;
  MobilityDriver driver(*tb.mobile, std::move(map), std::move(walk), dc);
  driver.AddBinding(tb.WiredMobilityBinding(&inject_wired, 50));
  driver.AddBinding(tb.RadioMobilityBinding(&inject_radio, 50));
  driver.Start();
  detector.Start();

  // Correspondent streams at the home address throughout the walk.
  uint64_t received = 0;
  UdpSocket sink(tb.mh->stack());
  MSN_CHECK(sink.Bind(6001));
  sink.SetReceiveHandler(
      [&](const std::vector<uint8_t>&, const UdpSocket::Metadata&) { ++received; });
  uint64_t sent = 0;
  UdpSocket source(tb.ch->stack());
  MSN_CHECK(source.Bind(6000));
  PeriodicTask stream(tb.sim, Milliseconds(100), [&] {
    ++sent;
    source.SendTo(Testbed::HomeAddress(), 6001, std::vector<uint8_t>(64, 0x51));
  });
  stream.Start();

  std::printf("walking for 120 s...\n");
  tb.RunFor(Seconds(120));

  const Vec2 pos = driver.position();
  std::printf("\nResults after 120 s:\n");
  std::printf("  final position (%.0f, %.0f) m; serving device %s, registered=%s\n", pos.x,
              pos.y, tb.mobile->attachment().device->name().c_str(),
              tb.mobile->registered() ? "yes" : "no");
  std::printf("  handoffs: %llu signal-driven, %llu coverage-forced; pingpong vetoes %llu\n",
              static_cast<unsigned long long>(driver.counters().handoffs_signal),
              static_cast<unsigned long long>(driver.counters().handoffs_coverage),
              static_cast<unsigned long long>(detector.counters().pingpong_suppressed));
  std::printf("  stream: %llu sent, %llu delivered (%.1f%% loss in flight)\n",
              static_cast<unsigned long long>(sent), static_cast<unsigned long long>(received),
              sent == 0 ? 0.0 : 100.0 * (1.0 - static_cast<double>(received) / sent));
  std::printf("  cell residency (driver ticks):\n");
  for (const auto& [name, value] : tb.metrics.ScalarSnapshot("mobility.residency.")) {
    std::printf("    %-28s %6.0f\n", name.c_str(), value);
  }
  std::printf("\nEvery handoff above emerged from the walk — no scripted faults, no\n"
              "scripted moves, just position, signal, and the movement detector.\n");
  return 0;
}
