file(REMOVE_RECURSE
  "libmsn_dhcp.a"
)
