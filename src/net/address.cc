#include "src/net/address.h"

#include <cstdio>
#include <cstdlib>

namespace msn {

std::optional<Ipv4Address> Ipv4Address::Parse(const std::string& s) {
  unsigned a, b, c, d;
  char extra;
  if (std::sscanf(s.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &extra) != 4) {
    return std::nullopt;
  }
  if (a > 255 || b > 255 || c > 255 || d > 255) {
    return std::nullopt;
  }
  return Ipv4Address(static_cast<uint8_t>(a), static_cast<uint8_t>(b), static_cast<uint8_t>(c),
                     static_cast<uint8_t>(d));
}

Ipv4Address Ipv4Address::MustParse(const std::string& s) {
  auto addr = Parse(s);
  if (!addr) {
    std::fprintf(stderr, "Ipv4Address::MustParse: bad address '%s'\n", s.c_str());
    std::abort();
  }
  return *addr;
}

std::string Ipv4Address::ToString() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xff, (value_ >> 16) & 0xff,
                (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

std::string SubnetMask::ToString() const { return Ipv4Address(mask_value()).ToString(); }

std::optional<Subnet> Subnet::Parse(const std::string& s) {
  const size_t slash = s.find('/');
  if (slash == std::string::npos) {
    return std::nullopt;
  }
  auto base = Ipv4Address::Parse(s.substr(0, slash));
  if (!base) {
    return std::nullopt;
  }
  char* end = nullptr;
  const long prefix = std::strtol(s.c_str() + slash + 1, &end, 10);
  if (end == s.c_str() + slash + 1 || *end != '\0' || prefix < 0 || prefix > 32) {
    return std::nullopt;
  }
  return Subnet(*base, SubnetMask(static_cast<int>(prefix)));
}

Subnet Subnet::MustParse(const std::string& s) {
  auto subnet = Parse(s);
  if (!subnet) {
    std::fprintf(stderr, "Subnet::MustParse: bad subnet '%s'\n", s.c_str());
    std::abort();
  }
  return *subnet;
}

std::string Subnet::ToString() const {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%s/%d", base_.ToString().c_str(), mask_.prefix_len());
  return buf;
}

MacAddress MacAddress::FromId(uint32_t id) {
  return MacAddress(std::array<uint8_t, 6>{0x02, 0x00, static_cast<uint8_t>((id >> 24) & 0xff),
                                           static_cast<uint8_t>((id >> 16) & 0xff),
                                           static_cast<uint8_t>((id >> 8) & 0xff),
                                           static_cast<uint8_t>(id & 0xff)});
}

std::string MacAddress::ToString() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes_[0], bytes_[1], bytes_[2],
                bytes_[3], bytes_[4], bytes_[5]);
  return buf;
}

}  // namespace msn
