#include "src/mobility/mobility_model.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace msn {

RandomWaypointModel::RandomWaypointModel(Vec2 bounds, Vec2 start, Params params, Rng rng)
    : bounds_(bounds), position_(start), params_(params), rng_(rng) {
  position_.x = std::clamp(position_.x, 0.0, bounds_.x);
  position_.y = std::clamp(position_.y, 0.0, bounds_.y);
  DrawNextLeg();
}

void RandomWaypointModel::DrawNextLeg() {
  waypoint_.x = rng_.UniformDouble(0.0, bounds_.x);
  waypoint_.y = rng_.UniformDouble(0.0, bounds_.y);
  speed_mps_ = rng_.UniformDouble(params_.min_speed_mps, params_.max_speed_mps);
  if (speed_mps_ <= 0.0) {
    speed_mps_ = params_.max_speed_mps > 0.0 ? params_.max_speed_mps : 1.0;
  }
  const double pause_ms = rng_.UniformDouble(params_.min_pause.ToMillisF(),
                                             params_.max_pause.ToMillisF());
  pause_left_ = MillisecondsF(pause_ms < 0.0 ? 0.0 : pause_ms);
}

Vec2 RandomWaypointModel::Advance(Duration dt) {
  double remaining_s = dt.ToSecondsF();
  while (remaining_s > 1e-12) {
    if (pause_left_.nanos() > 0) {
      const double pause_s = pause_left_.ToSecondsF();
      if (pause_s >= remaining_s) {
        pause_left_ = pause_left_ - SecondsF(remaining_s);
        return position_;
      }
      remaining_s -= pause_s;
      pause_left_ = Duration();
    }
    const double leg_m = Distance(position_, waypoint_);
    const double step_m = speed_mps_ * remaining_s;
    if (step_m < leg_m) {
      const double f = step_m / leg_m;
      position_.x += (waypoint_.x - position_.x) * f;
      position_.y += (waypoint_.y - position_.y) * f;
      return position_;
    }
    // Reached the waypoint inside this step; pause there, then a new leg.
    position_ = waypoint_;
    remaining_s -= speed_mps_ > 0.0 ? leg_m / speed_mps_ : remaining_s;
    DrawNextLeg();
  }
  return position_;
}

TraceReplayModel::TraceReplayModel(std::vector<Point> points) : points_(std::move(points)) {
  if (!points_.empty()) {
    position_ = points_.front().position;
  }
}

Vec2 TraceReplayModel::Advance(Duration dt) {
  clock_ = clock_ + dt;
  if (points_.empty()) {
    return position_;
  }
  if (clock_ <= points_.front().at) {
    position_ = points_.front().position;
    return position_;
  }
  if (clock_ >= points_.back().at) {
    position_ = points_.back().position;
    return position_;
  }
  for (size_t i = 1; i < points_.size(); ++i) {
    if (clock_ > points_[i].at) {
      continue;
    }
    const Point& a = points_[i - 1];
    const Point& b = points_[i];
    const double span = (b.at - a.at).ToSecondsF();
    const double f = span > 0.0 ? (clock_ - a.at).ToSecondsF() / span : 1.0;
    position_.x = a.position.x + (b.position.x - a.position.x) * f;
    position_.y = a.position.y + (b.position.y - a.position.y) * f;
    return position_;
  }
  position_ = points_.back().position;
  return position_;
}

std::string TraceReplayModel::ToText() const {
  std::string out = "msn-trace-v1\n";
  char buf[96];
  for (const Point& p : points_) {
    std::snprintf(buf, sizeof(buf), "p %" PRId64 " %.6g %.6g\n", p.at.millis(), p.position.x,
                  p.position.y);
    out += buf;
  }
  out += "end\n";
  return out;
}

std::optional<TraceReplayModel> TraceReplayModel::Parse(const std::string& text,
                                                        std::string* error) {
  auto fail = [error](const std::string& msg) -> std::optional<TraceReplayModel> {
    if (error != nullptr) {
      *error = msg;
    }
    return std::nullopt;
  };

  std::vector<Point> points;
  bool saw_header = false;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) {
      continue;
    }
    if (!saw_header) {
      if (word != "msn-trace-v1") {
        return fail("missing msn-trace-v1 header");
      }
      saw_header = true;
      continue;
    }
    if (word == "end") {
      break;
    }
    if (word != "p") {
      return fail("unknown trace directive: " + word);
    }
    int64_t at_ms = 0;
    double x = 0.0;
    double y = 0.0;
    if (!(ls >> at_ms >> x >> y)) {
      return fail("bad trace point line: " + line);
    }
    if (!points.empty() && Milliseconds(at_ms) < points.back().at) {
      return fail("trace timestamps must be non-decreasing");
    }
    points.push_back(Point{Milliseconds(at_ms), {x, y}});
  }
  if (!saw_header) {
    return fail("empty trace file");
  }
  return TraceReplayModel(std::move(points));
}

TraceReplayModel TraceReplayModel::Record(MobilityModel& source, Duration length,
                                          Duration step) {
  std::vector<Point> points;
  points.push_back(Point{Duration(), source.position()});
  for (Duration t = step; t <= length; t = t + step) {
    points.push_back(Point{t, source.Advance(step)});
  }
  return TraceReplayModel(std::move(points));
}

GroupMobilityModel::GroupMobilityModel(Vec2 bounds, std::unique_ptr<MobilityModel> reference,
                                       Params params, Rng rng)
    : bounds_(bounds), reference_(std::move(reference)), params_(params), rng_(rng) {
  position_ = reference_->position();
}

Vec2 GroupMobilityModel::Advance(Duration dt) {
  const Vec2 ref = reference_->Advance(dt);
  // Bounded random walk of the member's offset from the reference point.
  offset_.x += rng_.UniformDouble(-params_.offset_step_m, params_.offset_step_m);
  offset_.y += rng_.UniformDouble(-params_.offset_step_m, params_.offset_step_m);
  const double r = std::sqrt(offset_.x * offset_.x + offset_.y * offset_.y);
  if (r > params_.max_offset_m && r > 0.0) {
    const double f = params_.max_offset_m / r;
    offset_.x *= f;
    offset_.y *= f;
  }
  position_.x = std::clamp(ref.x + offset_.x, 0.0, bounds_.x);
  position_.y = std::clamp(ref.y + offset_.y, 0.0, bounds_.y);
  return position_;
}

}  // namespace msn
