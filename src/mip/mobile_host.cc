#include "src/mip/mobile_host.h"
#include "src/util/assert.h"

#include <algorithm>
#include <utility>

#include "src/util/logging.h"

namespace msn {

MobileHost::MobileHost(Node& node, Config config) : node_(node), config_(config) {
  MetricsRegistry* metrics = config_.metrics;
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  counters_.registrations_sent = metrics->GetCounterRef("mh.registrations_sent");
  counters_.registrations_accepted = metrics->GetCounterRef("mh.registrations_accepted");
  counters_.registrations_denied = metrics->GetCounterRef("mh.registrations_denied");
  counters_.registrations_timed_out = metrics->GetCounterRef("mh.registrations_timed_out");
  counters_.renewals = metrics->GetCounterRef("mh.renewals");
  counters_.retransmissions = metrics->GetCounterRef("mh.retransmissions");
  counters_.bindings_lost = metrics->GetCounterRef("mh.bindings_lost");
  counters_.recoveries = metrics->GetCounterRef("mh.recoveries");
  counters_.resyncs = metrics->GetCounterRef("mh.resyncs");
  counters_.admission_backoffs = metrics->GetCounterRef("mh.admission_backoffs");
  counters_.duplicate_replies_dropped = metrics->GetCounterRef("mh.duplicate_replies_dropped");
  counters_.stale_replies_dropped = metrics->GetCounterRef("mh.stale_replies_dropped");
  counters_.packets_tunneled_out = metrics->GetCounterRef("mh.packets_tunneled_out");
  counters_.packets_triangle_out = metrics->GetCounterRef("mh.packets_triangle_out");
  counters_.packets_encap_direct_out = metrics->GetCounterRef("mh.packets_encap_direct_out");
  counters_.packets_decapsulated_in = metrics->GetCounterRef("mh.packets_decapsulated_in");
  counters_.probes_sent = metrics->GetCounterRef("mh.probes_sent");
  counters_.probe_fallbacks = metrics->GetCounterRef("mh.probe_fallbacks");
  counters_.failover_count = metrics->GetCounterRef("mh.failover_count");
  handoff_histogram_ = &metrics->GetHistogram("mh.handoff_ms");
  active_home_agent_ = config_.home_agent;

  // The encapsulating virtual interface (paper Figure 4). While away from
  // home the home address is bound to it, so decapsulated packets addressed
  // to the home address are delivered locally.
  auto vif = std::make_unique<VirtualInterface>(node_.sim(), "vif");
  vif->SetEncapHandler([this](const Ipv4Header& inner, const Packet& wire) {
    EncapsulateOut(inner, wire);
  });
  vif_ = static_cast<VirtualInterface*>(node_.AdoptDevice(std::move(vif)));

  // Decapsulation of tunneled packets arriving at the care-of address.
  tunnel_ = std::make_unique<IpIpTunnelEndpoint>(node_.stack());
  tunnel_->SetInspector([this](const Ipv4Header& outer, const Ipv4Datagram& inner) {
    (void)outer;
    (void)inner;
    ++counters_.packets_decapsulated_in;
    return true;
  });

  // Registration endpoint: one UDP socket whose bound source follows the
  // current care-of address (local-role traffic, exempt from mobility).
  reg_socket_ = std::make_unique<UdpSocket>(node_.stack());
  MSN_CHECK(reg_socket_->Bind(0)) << "mh registration ephemeral port";
  reg_socket_->SetReceiveHandler(
      [this](const std::vector<uint8_t>& data, const UdpSocket::Metadata& meta) {
        OnRegistrationDatagram(data, meta);
      });

  pinger_ = std::make_unique<Pinger>(node_.stack());

  // The paper's single kernel hook: the enhanced route lookup.
  node_.stack().SetRouteLookupOverride(
      [this](const RouteQuery& query) { return RouteOverride(query); });
  // Every MPT mutation (probe fallbacks, policy edits) orphans cached route
  // decisions, which hold pointers into the entries vector.
  policy_table_.SetChangeListener([this] { node_.stack().InvalidateFlowCache(); });
}

MobileHost::Counters MobileHost::counters() const {
  Counters c;
  c.registrations_sent = counters_.registrations_sent;
  c.registrations_accepted = counters_.registrations_accepted;
  c.registrations_denied = counters_.registrations_denied;
  c.registrations_timed_out = counters_.registrations_timed_out;
  c.renewals = counters_.renewals;
  c.retransmissions = counters_.retransmissions;
  c.bindings_lost = counters_.bindings_lost;
  c.recoveries = counters_.recoveries;
  c.resyncs = counters_.resyncs;
  c.admission_backoffs = counters_.admission_backoffs;
  c.duplicate_replies_dropped = counters_.duplicate_replies_dropped;
  c.stale_replies_dropped = counters_.stale_replies_dropped;
  c.packets_tunneled_out = counters_.packets_tunneled_out;
  c.packets_triangle_out = counters_.packets_triangle_out;
  c.packets_encap_direct_out = counters_.packets_encap_direct_out;
  c.packets_decapsulated_in = counters_.packets_decapsulated_in;
  c.probes_sent = counters_.probes_sent;
  c.probe_fallbacks = counters_.probe_fallbacks;
  c.failover_count = counters_.failover_count;
  return c;
}

MobileHost::~MobileHost() {
  CancelPendingRegistration();
  node_.sim().Cancel(renewal_event_);
  node_.stack().ClearRouteLookupOverride();
}

// --- Route policy (the enhanced ip_rt_route()) ----------------------------------

std::optional<RouteDecision> MobileHost::RouteOverride(const RouteQuery& query) {
  // Mobile hosts do not forward; and at home the normal table is correct.
  if (query.forwarding || !away_) {
    return std::nullopt;
  }
  // Local role: an application that bound a source address other than the
  // home address is mobile-aware (or local-network traffic such as the
  // registration socket and DHCP). Leave it alone (paper §3.3, §5.2).
  if (!query.src_hint.IsAny() && query.src_hint != config_.home_address) {
    return std::nullopt;
  }
  if (query.dst == config_.home_address || query.dst.IsLoopback() ||
      query.dst.IsBroadcast()) {
    return std::nullopt;
  }

  if (fa_mode_) {
    // With a foreign agent, the FA is our default router and essentially our
    // only connection to the network (paper §5.2); packets go out plain with
    // the home source address and the FA as next hop.
    RouteDecision decision;
    decision.device = attachment_.device;
    decision.src = config_.home_address;
    decision.next_hop = attachment_.gateway;  // The FA itself.
    return decision;
  }

  // Per-packet accounting (MPT entry hits, triangle counter) is carried out
  // of the override as pointers and bumped centrally by IpStack::RouteLookup,
  // so flow-cache hits count exactly like fresh lookups. The pointers stay
  // valid because every MPT mutation fires the change listener, which
  // invalidates the cache before the entries vector can move.
  MobilePolicyTable::Entry* entry = policy_table_.MatchEntry(query.dst);
  const MobilePolicy policy = entry != nullptr ? entry->policy : policy_table_.default_policy();
  uint64_t* hits = entry != nullptr ? &entry->hits : nullptr;
  switch (policy) {
    case MobilePolicy::kTunnelHome:
    case MobilePolicy::kEncapDirect: {
      // Hand the packet to the VIF with the home source address; the encap
      // handler picks the outer destination (HA or the correspondent).
      RouteDecision decision;
      decision.device = vif_;
      decision.src = config_.home_address;
      decision.next_hop = Ipv4Address::Any();
      decision.policy_hits = hits;
      return decision;
    }
    case MobilePolicy::kTriangle: {
      // Straight out the physical interface, home address as source. Transit
      // filters on the visited network may drop this; the probe machinery
      // caches a fallback when they do.
      RouteDecision decision;
      decision.device = attachment_.device;
      decision.src = config_.home_address;
      const Subnet local(attachment_.care_of, attachment_.mask);
      decision.next_hop =
          local.Contains(query.dst) ? Ipv4Address::Any() : attachment_.gateway;
      decision.policy_counter = &counters_.packets_triangle_out;
      decision.policy_hits = hits;
      return decision;
    }
    case MobilePolicy::kDirect: {
      // Pure local role: the normal routing table answers (care-of source),
      // but a matched MPT entry still records the hit.
      RouteDecision decision;
      decision.defer_to_table = true;
      decision.policy_hits = hits;
      return decision;
    }
  }
  return std::nullopt;
}

void MobileHost::EncapsulateOut(const Ipv4Header& inner, const Packet& inner_wire) {
  const MobilePolicy policy = policy_table_.LookupConst(inner.dst);
  Ipv4Address outer_dst;
  if (policy == MobilePolicy::kEncapDirect) {
    outer_dst = inner.dst;
    ++counters_.packets_encap_direct_out;
  } else {
    outer_dst = active_home_agent_;
    ++counters_.packets_tunneled_out;
  }
  // Outer source is the physical (care-of) address: valid on the local
  // network, so transit filters pass it, and the route lookup sees a
  // non-mobile source and does not encapsulate again (paper §3.3).
  Ipv4Header outer;
  Packet wire = EncapsulateIpIpPacket(outer, inner_wire, attachment_.care_of, outer_dst);
  node_.stack().SendPreformedPacket(outer, std::move(wire), /*forwarding=*/false);
}

// --- Attach pipeline --------------------------------------------------------------

void MobileHost::BeginAttach(const Attachment& attachment, bool skip_interface_config,
                             CompletionCallback done) {
  const uint64_t generation = ++attach_generation_;
  CancelPendingRegistration();
  if (pending_done_) {
    // Supersede an in-flight attach.
    CompletionCallback superseded = std::move(pending_done_);
    pending_done_ = nullptr;
    superseded(false);
  }
  pending_attachment_ = attachment;
  pending_done_ = std::move(done);
  pending_deregistration_ = false;
  renewing_ = false;
  fa_mode_ = false;
  node_.stack().InvalidateFlowCache();
  timeline_ = RegistrationTimeline{};
  timeline_.start = node_.sim().Now();
  state_ = State::kRegistering;

  // Bind the home address to the virtual interface while away (paper §5.2).
  if (node_.stack().GetInterfaceAddress(vif_) != config_.home_address) {
    node_.stack().ConfigureAddress(vif_, config_.home_address, SubnetMask(32));
  }
  StepConfigureInterface(generation, skip_interface_config);
}

void MobileHost::StepConfigureInterface(uint64_t generation, bool skip_cost) {
  const Duration cost =
      skip_cost ? Duration() : config_.calibration.interface_config.Draw(node_.sim().rng());
  node_.sim().Schedule(cost, [this, generation] {
    if (generation != attach_generation_) {
      return;
    }
    const Attachment& att = pending_attachment_;
    if (node_.stack().GetInterfaceAddress(att.device) != att.care_of) {
      node_.stack().UnconfigureAddress(att.device);
      node_.stack().ConfigureAddress(att.device, att.care_of, att.mask);
    }
    timeline_.interface_configured = node_.sim().Now();
    StepUpdateRoutes(generation);
  });
}

void MobileHost::StepUpdateRoutes(uint64_t generation) {
  const Duration cost = config_.calibration.route_update.Draw(node_.sim().rng());
  node_.sim().Schedule(cost, [this, generation] {
    if (generation != attach_generation_) {
      return;
    }
    const Attachment& att = pending_attachment_;
    node_.stack().routes().RemoveWhere(
        [](const RouteEntry& e) { return e.dest == Subnet::Default(); });
    node_.AddDefaultRoute(att.gateway, att.device);
    attachment_ = att;
    away_ = true;
    node_.stack().InvalidateFlowCache();
    timeline_.route_changed = node_.sim().Now();
    StepSendRegistration(generation);
  });
}

void MobileHost::StepSendRegistration(uint64_t generation) {
  const Duration cost = config_.calibration.request_build.Draw(node_.sim().rng());
  node_.sim().Schedule(cost, [this, generation] {
    if (generation != attach_generation_) {
      return;
    }
    // With a co-located care-of address the registration socket is bound to
    // it (local role); through a foreign agent the MH has no local address
    // and registers from its home address.
    reg_socket_->BindSourceAddress(fa_mode_ ? config_.home_address : attachment_.care_of);
    BeginRegistrationAttempt();
    SendRegistrationRequest(generation, /*deregistration=*/false);
  });
}

void MobileHost::BeginRegistrationAttempt() {
  retransmits_left_ = config_.max_retransmits;
  backoff_ = Duration();
  resync_attempts_left_ = 2;
}

Duration MobileHost::NextRetransmitDelay() {
  if (!config_.retransmit_backoff) {
    return config_.retransmit_interval;
  }
  if (backoff_.nanos() <= 0) {
    // First send of an attempt waits exactly the base interval, so clean
    // (loss-free) runs behave identically with or without backoff.
    backoff_ = config_.retransmit_interval;
    return backoff_;
  }
  // Decorrelated jitter: next = min(cap, U(base, 3 * previous)).
  const double base_s = config_.retransmit_interval.ToSecondsF();
  const double prev_s = backoff_.ToSecondsF();
  const Duration drawn = SecondsF(node_.sim().rng().UniformDouble(base_s, 3.0 * prev_s));
  backoff_ = std::min(config_.retransmit_max_interval, drawn);
  return backoff_;
}

void MobileHost::SendRegistrationRequest(uint64_t generation, bool deregistration) {
  in_flight_deregistration_ = deregistration;
  if (renewing_) {
    ++renewal_sends_;
  }
  RegistrationRequest request;
  // Through an FA the *agent* decapsulates; co-located care-of means we do.
  request.flags = (fa_mode_ && !deregistration) ? 0 : kMipFlagDecapsulateSelf;
  request.lifetime_sec = deregistration ? 0 : config_.lifetime_sec;
  request.home_address = config_.home_address;
  request.home_agent = active_home_agent_;
  request.care_of_address = deregistration ? config_.home_address : attachment_.care_of;
  request.identification = next_identification_++;
  outstanding_identification_ = request.identification;
  if (config_.auth_key.has_value()) {
    request.Authenticate(*config_.auth_key);
  }

  ++counters_.registrations_sent;
  ++unanswered_sends_;
  if (timeline_.request_sent == Time::Zero() || timeline_.request_sent < timeline_.start) {
    timeline_.request_sent = node_.sim().Now();
  }
  MSN_DEBUG("mip-mh", "%s: %s", node_.name().c_str(), request.ToString().c_str());
  if (fa_mode_ && !deregistration) {
    // Relay via the foreign agent, framed straight to its hardware address
    // (the MH has no routable address on the visited network).
    UdpSocket::SendExtras extras;
    extras.force_device = attachment_.device;
    extras.force_dst_mac = fa_mac_;
    reg_socket_->SendToWithExtras(attachment_.care_of, kMipRegistrationPort,
                                  request.Serialize(), extras);
  } else {
    reg_socket_->SendTo(active_home_agent_, kMipRegistrationPort, request.Serialize());
  }

  retransmit_event_ = node_.sim().Schedule(NextRetransmitDelay(),
                                           [this, generation, deregistration] {
                                             OnRetransmitTimer(generation, deregistration);
                                           });
}

void MobileHost::MaybeFailoverHomeAgent() {
  if (!config_.backup_home_agent.has_value() ||
      unanswered_sends_ < static_cast<uint64_t>(std::max(1, config_.failover_after_sends))) {
    return;
  }
  const Ipv4Address from = active_home_agent_;
  active_home_agent_ = active_home_agent_ == config_.home_agent
                           ? *config_.backup_home_agent
                           : config_.home_agent;
  ++counters_.failover_count;
  // Structured so chaos runs are greppable without pcap digging.
  MSN_WARN("mip-mh", "%s: event=ha_failover from=%s to=%s unanswered=%llu renewing=%d",
           node_.name().c_str(), from.ToString().c_str(),
           active_home_agent_.ToString().c_str(),
           static_cast<unsigned long long>(unanswered_sends_), renewing_ ? 1 : 0);
  // The switch starts a fresh silence window toward the new agent.
  unanswered_sends_ = 0;
}

void MobileHost::OnRetransmitTimer(uint64_t generation, bool deregistration) {
  if (generation != attach_generation_) {
    return;
  }
  MaybeFailoverHomeAgent();
  if (renewing_) {
    // A renewal must not give up silently: by default it keeps retrying with
    // backoff until the HA answers or the attachment changes. If the binding
    // lifetime has meanwhile passed, the HA-side binding is gone — record the
    // loss and demote so callers see the truth while we keep re-registering.
    if (!binding_lost_ && binding_expires_ != Time::Zero() &&
        node_.sim().Now() >= binding_expires_) {
      binding_lost_ = true;
      ++counters_.bindings_lost;
      if (state_ == State::kRegistered) {
        state_ = State::kRegistering;
      }
      MSN_WARN("mip-mh", "%s: binding expired with renewal still in flight",
               node_.name().c_str());
    }
    if (config_.renewal_retry_budget > 0 &&
        renewal_sends_ >= static_cast<uint64_t>(config_.renewal_retry_budget)) {
      ++counters_.registrations_timed_out;
      renewing_ = false;
      MSN_WARN("mip-mh", "%s: renewal retry budget exhausted", node_.name().c_str());
      FinishRegistration(generation, /*success=*/false);
      return;
    }
    ++counters_.retransmissions;
    SendRegistrationRequest(generation, deregistration);
    return;
  }
  if (retransmits_left_ <= 0) {
    ++counters_.registrations_timed_out;
    MSN_WARN("mip-mh", "%s: registration timed out", node_.name().c_str());
    FinishRegistration(generation, /*success=*/false);
    return;
  }
  --retransmits_left_;
  ++timeline_.retransmissions;
  ++counters_.retransmissions;
  SendRegistrationRequest(generation, deregistration);
}

void MobileHost::OnRegistrationDatagram(const std::vector<uint8_t>& data,
                                        const UdpSocket::Metadata& meta) {
  (void)meta;
  auto reply = RegistrationReply::Parse(data);
  if (!reply || reply->home_address != config_.home_address) {
    return;  // Malformed or foreign reply.
  }
  if (reply->home_agent == active_home_agent_) {
    // Any reply — even a duplicate or a denial — proves the active HA is
    // alive, so the failover escalation starts over.
    unanswered_sends_ = 0;
  }
  if (reply->identification != outstanding_identification_ ||
      outstanding_identification_ == 0) {
    // Duplicate (the medium can replicate frames) or stale (an answer to a
    // request we already gave up on). Either way, acting on it could roll
    // the binding back to an old care-of address — drop it.
    if (reply->identification == last_accepted_identification_ &&
        last_accepted_identification_ != 0) {
      ++counters_.duplicate_replies_dropped;
    } else {
      ++counters_.stale_replies_dropped;
    }
    return;
  }
  if (config_.auth_key.has_value() && !reply->VerifyAuthenticator(*config_.auth_key)) {
    MSN_WARN("mip-mh", "%s: discarding reply with bad authenticator", node_.name().c_str());
    return;  // Forged or corrupted; keep retransmitting.
  }
  node_.sim().Cancel(retransmit_event_);
  outstanding_identification_ = 0;
  const uint64_t generation = attach_generation_;
  MSN_DEBUG("mip-mh", "%s: %s", node_.name().c_str(), reply->ToString().c_str());

  if (!reply->accepted()) {
    if (reply->code == MipReplyCode::kDeniedIdentificationMismatch &&
        config_.resync_on_identification_mismatch && resync_attempts_left_ > 0) {
      // The HA rejected our identification — typically because it restarted
      // and re-anchored its replay window. Re-send the same request with a
      // fresh identification instead of failing the whole attach.
      --resync_attempts_left_;
      ++counters_.resyncs;
      node_.sim().Cancel(retransmit_event_);
      MSN_WARN("mip-mh", "%s: identification mismatch from HA; resyncing",
               node_.name().c_str());
      SendRegistrationRequest(generation, in_flight_deregistration_);
      return;
    }
    if (reply->code == MipReplyCode::kDeniedInsufficientResources &&
        config_.retry_on_insufficient_resources) {
      // The HA's admission filter shed us under load — an explicit "try
      // again later", not a verdict on this registration. Back off with the
      // decorrelated-jitter schedule and retry; deliberately does not
      // consume retransmits_left_, so a shed host converges once the
      // overload clears instead of exhausting its budget mid-storm.
      ++counters_.admission_backoffs;
      MSN_DEBUG("mip-mh", "%s: admission-denied by HA; backing off",
                node_.name().c_str());
      retransmit_event_ = node_.sim().Schedule(
          NextRetransmitDelay(), [this, generation] {
            if (generation != attach_generation_) {
              return;
            }
            SendRegistrationRequest(generation, in_flight_deregistration_);
          });
      return;
    }
    ++counters_.registrations_denied;
    renewing_ = false;
    FinishRegistration(generation, /*success=*/false);
    return;
  }
  ++counters_.registrations_accepted;
  last_accepted_identification_ = reply->identification;

  if (renewing_) {
    renewing_ = false;
    if (binding_lost_) {
      // The binding lapsed mid-renewal but we re-established it without a
      // new attach: the HA saw a fresh registration, we saw a recovery.
      binding_lost_ = false;
      ++counters_.recoveries;
    }
    state_ = State::kRegistered;
    ScheduleRenewal(reply->lifetime_sec);
    return;
  }

  timeline_.reply_received = node_.sim().Now();
  const uint16_t granted = reply->lifetime_sec;
  const Duration cost = config_.calibration.post_registration.Draw(node_.sim().rng());
  node_.sim().Schedule(cost, [this, generation, granted] {
    if (generation != attach_generation_) {
      return;
    }
    timeline_.done = node_.sim().Now();
    timeline_.success = true;
    if (pending_deregistration_) {
      state_ = State::kAtHome;
    } else {
      state_ = State::kRegistered;
      // Handoff downtime as the paper measures it: attach start to usable
      // binding (Figure 7's total).
      handoff_histogram_->Record(timeline_.Total().ToMillisF());
      ScheduleRenewal(granted);
    }
    if (pending_done_) {
      CompletionCallback cb = std::move(pending_done_);
      pending_done_ = nullptr;
      cb(true);
    }
  });
}

void MobileHost::FinishRegistration(uint64_t generation, bool success) {
  if (generation != attach_generation_) {
    return;
  }
  timeline_.done = node_.sim().Now();
  timeline_.success = success;
  if (success && !pending_deregistration_) {
    // Handoff downtime as the paper measures it: attach start to usable
    // binding (Figure 7's total).
    handoff_histogram_->Record(timeline_.Total().ToMillisF());
  }
  if (!success) {
    // Registration failed: the attachment may still be usable in its local
    // role (paper §5.2: "especially useful if the home agent is not
    // reachable or has crashed"), but home-role traffic has no binding.
    state_ = pending_deregistration_ ? State::kAtHome : State::kDetached;
  }
  if (pending_done_) {
    CompletionCallback cb = std::move(pending_done_);
    pending_done_ = nullptr;
    cb(success);
  }
}

void MobileHost::ScheduleRenewal(uint16_t granted_lifetime_sec) {
  node_.sim().Cancel(renewal_event_);
  binding_expires_ = node_.sim().Now() + Seconds(granted_lifetime_sec);
  if (!config_.auto_renew || granted_lifetime_sec == 0) {
    return;
  }
  const Duration lead = Seconds(granted_lifetime_sec) * config_.renewal_fraction;
  renewal_event_ = node_.sim().Schedule(lead, [this, generation = attach_generation_] {
    // state_ alone is not enough: during an AttachHome whose deregistration
    // is still in flight the state stays kRegistered, but renewing the old
    // binding with the (now home) attachment would be wrong.
    if (generation != attach_generation_ || state_ != State::kRegistered) {
      return;
    }
    ++counters_.renewals;
    renewing_ = true;
    renewal_sends_ = 0;
    BeginRegistrationAttempt();
    SendRegistrationRequest(attach_generation_, /*deregistration=*/false);
  });
}

void MobileHost::CancelPendingRegistration() {
  node_.sim().Cancel(retransmit_event_);
  retransmit_event_ = EventId();
  // A renewal armed for the superseded attachment must die with it: left
  // alive it fires after AttachHome has pointed attachment_ at the home
  // device, re-registering the home address as its own care-of — the HA
  // would then tunnel home-bound packets to itself in a loop.
  node_.sim().Cancel(renewal_event_);
  renewal_event_ = EventId();
  outstanding_identification_ = 0;
  renewing_ = false;
  binding_lost_ = false;
  binding_expires_ = Time::Zero();
  backoff_ = Duration();
  renewal_sends_ = 0;
  unanswered_sends_ = 0;
  in_flight_deregistration_ = false;
}

// --- Public attach operations -------------------------------------------------------

void MobileHost::AttachForeign(const Attachment& attachment, CompletionCallback done) {
  BeginAttach(attachment, /*skip_interface_config=*/false, std::move(done));
}

void MobileHost::SwitchCareOfAddress(Ipv4Address new_care_of, CompletionCallback done) {
  Attachment att = attachment_;
  att.care_of = new_care_of;
  BeginAttach(att, /*skip_interface_config=*/false, std::move(done));
}

void MobileHost::HotSwitchTo(const Attachment& attachment, CompletionCallback done) {
  const bool already_configured =
      node_.stack().GetInterfaceAddress(attachment.device) == attachment.care_of;
  BeginAttach(attachment, /*skip_interface_config=*/already_configured, std::move(done));
}

void MobileHost::ColdSwitchTo(const Attachment& attachment, CompletionCallback done) {
  const uint64_t generation = ++attach_generation_;
  CancelPendingRegistration();
  NetDevice* old_device = attachment_.device != nullptr ? attachment_.device
                                                        : config_.home_device;
  if (fa_mode_ && old_device != nullptr && old_device->IsUp()) {
    // Smooth hand-off (extension): tell the old foreign agent we are leaving
    // so it buffers our packets until the home agent reports the new care-of
    // address. Sent before the interface goes down.
    BindingUpdate leaving;
    leaving.home_address = config_.home_address;
    leaving.new_care_of = Ipv4Address::Any();
    UdpSocket::SendExtras extras;
    extras.force_device = old_device;
    extras.force_dst_mac = fa_mac_;
    reg_socket_->SendToWithExtras(attachment_.care_of, kMipRegistrationPort,
                                  leaving.Serialize(), extras);
  }
  // Tear down the old interface: delete its routes, drop its address, take
  // the device down (paper §4: "deletes the route to the first interface,
  // brings the interface down, brings the new interface up, adds its route,
  // and finally registers the new IP address"). When a departure notice was
  // just queued for the old foreign agent, hold the teardown long enough for
  // the frame to serialize onto the (possibly slow) old link.
  Duration teardown = config_.calibration.route_update.Draw(node_.sim().rng());
  if (fa_mode_) {
    teardown += Milliseconds(50);
  }
  node_.sim().Schedule(teardown, [this, generation, old_device, attachment,
                                  done = std::move(done)]() mutable {
    if (generation != attach_generation_) {
      return;
    }
    if (old_device != nullptr && old_device != attachment.device) {
      node_.stack().routes().RemoveForDevice(old_device);
      node_.stack().UnconfigureAddress(old_device);
      old_device->TakeDown();
    }
    // From here until the new registration completes the host has no usable
    // attachment; stop claiming the old (torn-down) one is registered. This
    // is the handoff downtime window the paper measures in Figure 7.
    if (state_ == State::kRegistered || state_ == State::kAtHome) {
      state_ = State::kRegistering;
    }
    attachment.device->BringUp([this, generation, attachment, done = std::move(done)]() mutable {
      if (generation != attach_generation_) {
        return;
      }
      AttachForeign(attachment, std::move(done));
    });
  });
}

void MobileHost::AttachHome(CompletionCallback done) {
  const uint64_t generation = ++attach_generation_;
  CancelPendingRegistration();
  if (pending_done_) {
    CompletionCallback superseded = std::move(pending_done_);
    pending_done_ = nullptr;
    superseded(false);
  }
  const bool was_away = away_ || state_ == State::kRegistered || state_ == State::kRegistering;
  pending_done_ = std::move(done);
  pending_deregistration_ = was_away;
  renewing_ = false;
  fa_mode_ = false;
  node_.stack().InvalidateFlowCache();
  timeline_ = RegistrationTimeline{};
  timeline_.start = node_.sim().Now();

  // Cold return: the home device may have been taken down on departure.
  if (!config_.home_device->IsUp()) {
    config_.home_device->BringUp([this, generation] {
      if (generation != attach_generation_) {
        return;
      }
      ContinueAttachHome(generation);
    });
    return;
  }
  ContinueAttachHome(generation);
}

void MobileHost::ContinueAttachHome(uint64_t generation) {
  const bool was_away = pending_deregistration_;
  // Step 1: configure the home address on the home device.
  const Duration config_cost = config_.calibration.interface_config.Draw(node_.sim().rng());
  node_.sim().Schedule(config_cost, [this, generation, was_away] {
    if (generation != attach_generation_) {
      return;
    }
    // The home address moves from the VIF back to the physical device.
    node_.stack().UnconfigureAddress(vif_);
    if (node_.stack().GetInterfaceAddress(config_.home_device) != config_.home_address) {
      node_.stack().UnconfigureAddress(config_.home_device);
      node_.stack().ConfigureAddress(config_.home_device, config_.home_address,
                                     config_.home_mask);
    }
    timeline_.interface_configured = node_.sim().Now();

    // Step 2: route update.
    const Duration route_cost = config_.calibration.route_update.Draw(node_.sim().rng());
    node_.sim().Schedule(route_cost, [this, generation, was_away] {
      if (generation != attach_generation_) {
        return;
      }
      node_.stack().routes().RemoveWhere(
          [](const RouteEntry& e) { return e.dest == Subnet::Default(); });
      node_.AddDefaultRoute(config_.home_gateway, config_.home_device);
      attachment_ = Attachment{config_.home_device, config_.home_address, config_.home_mask,
                               config_.home_gateway};
      away_ = false;
      node_.stack().InvalidateFlowCache();
      timeline_.route_changed = node_.sim().Now();

      // Announce our return: void stale ARP entries (including neighbours
      // still mapping the home address to the HA's proxy MAC).
      node_.stack().arp().AnnounceGratuitousArp(config_.home_device, config_.home_address);

      if (!was_away) {
        state_ = State::kAtHome;
        timeline_.done = node_.sim().Now();
        timeline_.success = true;
        if (pending_done_) {
          CompletionCallback cb = std::move(pending_done_);
          pending_done_ = nullptr;
          cb(true);
        }
        return;
      }
      // Step 3: deregister with the home agent.
      const Duration build = config_.calibration.request_build.Draw(node_.sim().rng());
      node_.sim().Schedule(build, [this, generation] {
        if (generation != attach_generation_) {
          return;
        }
        reg_socket_->BindSourceAddress(config_.home_address);
        BeginRegistrationAttempt();
        SendRegistrationRequest(generation, /*deregistration=*/true);
      });
    });
  });
}

void MobileHost::AttachViaForeignAgent(NetDevice* device, Ipv4Address fa_address,
                                       CompletionCallback done) {
  const uint64_t generation = ++attach_generation_;
  CancelPendingRegistration();
  if (pending_done_) {
    CompletionCallback superseded = std::move(pending_done_);
    pending_done_ = nullptr;
    superseded(false);
  }
  pending_done_ = std::move(done);
  pending_deregistration_ = false;
  renewing_ = false;
  timeline_ = RegistrationTimeline{};
  timeline_.start = node_.sim().Now();
  state_ = State::kRegistering;

  if (node_.stack().GetInterfaceAddress(vif_) != config_.home_address) {
    node_.stack().ConfigureAddress(vif_, config_.home_address, SubnetMask(32));
  }

  // Learn the FA's hardware address (ARP works even without our own IP).
  node_.stack().arp().Resolve(
      device, fa_address,
      [this, generation, device, fa_address](std::optional<MacAddress> mac) {
        if (generation != attach_generation_) {
          return;
        }
        if (!mac) {
          MSN_WARN("mip-mh", "%s: cannot resolve foreign agent %s", node_.name().c_str(),
                   fa_address.ToString().c_str());
          FinishRegistration(generation, /*success=*/false);
          return;
        }
        fa_mac_ = *mac;
        fa_mode_ = true;
        // No interface configuration: the FA is the point of attachment.
        node_.stack().routes().RemoveWhere(
            [](const RouteEntry& e) { return e.dest == Subnet::Default(); });
        attachment_ = Attachment{device, fa_address, SubnetMask(32), fa_address};
        away_ = true;
        node_.stack().InvalidateFlowCache();
        timeline_.interface_configured = node_.sim().Now();
        timeline_.route_changed = node_.sim().Now();
        StepSendRegistration(generation);
      });
}

// --- Probing --------------------------------------------------------------------------

void MobileHost::ProbeTriangleRoute(Ipv4Address correspondent, std::function<void(bool)> done) {
  ++counters_.probes_sent;
  // Probe with exactly the packets the triangle route would emit: echo
  // requests sourced from the home address, sent directly.
  const Subnet target(correspondent, SubnetMask(32));
  const MobilePolicy previous = policy_table_.LookupConst(correspondent);
  policy_table_.Set(target, MobilePolicy::kTriangle);
  pinger_->set_source(config_.home_address);
  pinger_->Ping(correspondent, config_.probe_timeout,
                [this, target, correspondent, previous,
                 done = std::move(done)](const Pinger::Result& result) {
                  if (result.success) {
                    policy_table_.Set(target, MobilePolicy::kTriangle, /*verified=*/true);
                    MSN_INFO("mip-mh", "%s: triangle route to %s verified",
                             node_.name().c_str(), correspondent.ToString().c_str());
                    if (done) {
                      done(true);
                    }
                    return;
                  }
                  // Timeout or administratively prohibited: cache the
                  // fallback so future packets tunnel through the HA.
                  ++counters_.probe_fallbacks;
                  policy_table_.RecordFallback(correspondent);
                  (void)previous;
                  MSN_INFO("mip-mh", "%s: triangle route to %s failed (%s); falling back",
                           node_.name().c_str(), correspondent.ToString().c_str(),
                           result.admin_prohibited ? "filtered" : "timeout");
                  if (done) {
                    done(false);
                  }
                });
}

}  // namespace msn
