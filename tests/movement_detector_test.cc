// Tests for movement detection / automatic interface selection (paper §6).
#include <gtest/gtest.h>

#include "src/mip/movement_detector.h"
#include "src/topo/testbed.h"
#include "src/tracing/probe.h"

namespace msn {
namespace {

class MovementFixture : public ::testing::Test {
 protected:
  void Build(uint64_t seed = 61) {
    TestbedConfig cfg;
    cfg.seed = seed;
    tb_ = std::make_unique<Testbed>(cfg);
    tb_->StartMobileAtHome();
    // Hot-standby configuration: MH visits net 36.8 on the wire with the
    // radio also up and addressed.
    tb_->StartMobileOnWired(50);
    tb_->ForceRadioUp();
    tb_->mh->stack().ConfigureAddress(tb_->mh_radio, Ipv4Address(36, 134, 0, 70),
                                      SubnetMask(16));

    MovementDetector::Config mc;
    mc.probe_interval = Milliseconds(500);
    mc.probe_timeout = Milliseconds(450);
    mc.hysteresis_rounds = 3;
    detector_ = std::make_unique<MovementDetector>(*tb_->mobile, mc);
    detector_->AddCandidate({tb_->WiredAttachment(50), /*preference=*/10});
    detector_->AddCandidate({tb_->WirelessAttachment(70), /*preference=*/1});
    detector_->Start();
  }

  // Kills the wired path by detaching the MH's Ethernet from its segment.
  void KillWired() { tb_->MoveMhEthernetTo(nullptr); }
  void RestoreWired() { tb_->MoveMhEthernetTo(tb_->net8.get()); }

  std::unique_ptr<Testbed> tb_;
  std::unique_ptr<MovementDetector> detector_;
};

TEST_F(MovementFixture, StableLinkCausesNoSwitching) {
  Build();
  tb_->RunFor(Seconds(10));
  EXPECT_EQ(detector_->counters().switches, 0u);
  EXPECT_EQ(tb_->mobile->attachment().device, tb_->mh_eth);
  // Both links are seen as healthy.
  EXPECT_LT(detector_->LossEstimate("eth0"), 0.1);
  EXPECT_LT(detector_->LossEstimate("strip0"), 0.25);  // Radio has rare drops.
}

TEST_F(MovementFixture, FailsOverToRadioWhenWiredDies) {
  Build();
  tb_->RunFor(Seconds(5));
  ASSERT_EQ(tb_->mobile->attachment().device, tb_->mh_eth);

  KillWired();
  tb_->RunFor(Seconds(15));
  EXPECT_GE(detector_->counters().failovers, 1u);
  EXPECT_EQ(tb_->mobile->attachment().device, tb_->mh_radio);
  EXPECT_TRUE(tb_->mobile->registered());
  auto binding = tb_->home_agent->GetBinding(Testbed::HomeAddress());
  ASSERT_TRUE(binding.has_value());
  EXPECT_TRUE(Testbed::Net134().Contains(binding->care_of));
}

TEST_F(MovementFixture, UpgradesBackWhenWiredReturns) {
  Build();
  tb_->RunFor(Seconds(5));
  KillWired();
  tb_->RunFor(Seconds(15));
  ASSERT_EQ(tb_->mobile->attachment().device, tb_->mh_radio);

  RestoreWired();
  tb_->RunFor(Seconds(15));
  EXPECT_GE(detector_->counters().upgrades, 1u);
  EXPECT_EQ(tb_->mobile->attachment().device, tb_->mh_eth);
  EXPECT_TRUE(tb_->mobile->registered());
}

TEST_F(MovementFixture, HysteresisSuppressesSingleDropFlapping) {
  Build();
  tb_->RunFor(Seconds(5));
  // One lost probe round must not trigger a switch.
  KillWired();
  tb_->RunFor(Milliseconds(600));  // ~1 probe round.
  RestoreWired();
  tb_->RunFor(Seconds(10));
  EXPECT_EQ(detector_->counters().switches, 0u);
  EXPECT_EQ(tb_->mobile->attachment().device, tb_->mh_eth);
}

TEST_F(MovementFixture, NotifiesUpperLayersWithLinkCharacteristics) {
  Build();
  std::vector<LinkCharacteristics> notifications;
  detector_->SetAttachmentChangeHandler(
      [&](const LinkCharacteristics& link, bool registered) {
        EXPECT_TRUE(registered);
        notifications.push_back(link);
      });
  tb_->RunFor(Seconds(5));
  KillWired();
  tb_->RunFor(Seconds(15));
  ASSERT_GE(notifications.size(), 1u);
  // The paper's §6: upper layers learn the new link's very different
  // characteristics (35 kb/s radio vs 10 Mb/s Ethernet).
  EXPECT_EQ(notifications.back().device_name, "strip0");
  EXPECT_EQ(notifications.back().bandwidth_bps, StripRadioDevice::kDefaultBandwidthBps);
  EXPECT_LT(notifications.back().loss_estimate, 0.4);
  EXPECT_GT(notifications.back().last_probe_rtt.ToMillisF(), 100.0);  // Radio RTT.
}

TEST_F(MovementFixture, TrafficContinuesAcrossAutomaticFailover) {
  Build();
  ProbeEchoServer echo(*tb_->mh, 7);
  ProbeSender sender(*tb_->ch,
                     ProbeSender::Config{Testbed::HomeAddress(), 7, Milliseconds(250)});
  sender.Start();
  tb_->RunFor(Seconds(3));
  KillWired();
  tb_->RunFor(Seconds(15));
  sender.Stop();
  tb_->RunFor(Seconds(2));
  // Echoes resumed after the automatic switch; the outage is bounded by the
  // detection hysteresis (~1.5 s) plus re-registration.
  EXPECT_EQ(tb_->mobile->attachment().device, tb_->mh_radio);
  const uint64_t lost = sender.TotalLost();
  EXPECT_GE(sender.received(), 40u);
  EXPECT_LE(lost, 14u);
  EXPECT_GE(lost, 2u);  // The detection window is not free.
}

}  // namespace
}  // namespace msn
