// Unit tests for src/link: devices, bring-up, media, timing, loss.
#include <gtest/gtest.h>

#include "src/link/link_device.h"
#include "src/link/medium.h"
#include "src/sim/simulator.h"

namespace msn {
namespace {

EthernetFrame MakeFrame(MacAddress src, MacAddress dst, size_t payload_size = 50) {
  EthernetFrame frame;
  frame.src = src;
  frame.dst = dst;
  frame.payload = std::vector<uint8_t>(payload_size, 0xaa);
  return frame;
}

class LinkTest : public ::testing::Test {
 protected:
  LinkTest()
      : sim_(123),
        medium_(sim_, "seg", EthernetMediumParams()),
        a_(sim_, "a0", MacAddress::FromId(1001)),
        b_(sim_, "b0", MacAddress::FromId(1002)),
        c_(sim_, "c0", MacAddress::FromId(1003)) {
    for (EthernetDevice* dev : {&a_, &b_, &c_}) {
      dev->AttachTo(&medium_);
      dev->ForceUp();
    }
  }

  int CountReceived(EthernetDevice& dev) {
    return static_cast<int>(dev.counters().rx_frames);
  }

  Simulator sim_;
  BroadcastMedium medium_;
  EthernetDevice a_, b_, c_;
};

TEST_F(LinkTest, UnicastReachesOnlyTarget) {
  ASSERT_TRUE(a_.Transmit(MakeFrame(a_.mac(), b_.mac())));
  sim_.Run();
  EXPECT_EQ(CountReceived(b_), 1);
  EXPECT_EQ(CountReceived(c_), 0);
  EXPECT_EQ(CountReceived(a_), 0);
  EXPECT_EQ(a_.counters().tx_frames, 1u);
}

TEST_F(LinkTest, BroadcastReachesAllButSender) {
  ASSERT_TRUE(a_.Transmit(MakeFrame(a_.mac(), MacAddress::Broadcast())));
  sim_.Run();
  EXPECT_EQ(CountReceived(b_), 1);
  EXPECT_EQ(CountReceived(c_), 1);
  EXPECT_EQ(CountReceived(a_), 0);
}

TEST_F(LinkTest, ReceiveHandlerInvoked) {
  int handled = 0;
  b_.SetReceiveHandler([&](NetDevice& dev, const EthernetFrame& frame) {
    ++handled;
    EXPECT_EQ(&dev, &b_);
    EXPECT_EQ(frame.src, a_.mac());
  });
  a_.Transmit(MakeFrame(a_.mac(), b_.mac()));
  sim_.Run();
  EXPECT_EQ(handled, 1);
}

TEST_F(LinkTest, TransmitWhileDownFails) {
  a_.TakeDown();
  EXPECT_FALSE(a_.Transmit(MakeFrame(a_.mac(), b_.mac())));
  EXPECT_EQ(a_.counters().dropped_down, 1u);
  sim_.Run();
  EXPECT_EQ(CountReceived(b_), 0);
}

TEST_F(LinkTest, DeliveryToDownDeviceDropped) {
  b_.TakeDown();
  a_.Transmit(MakeFrame(a_.mac(), b_.mac()));
  sim_.Run();
  EXPECT_EQ(CountReceived(b_), 0);
  EXPECT_EQ(b_.counters().dropped_rx_down, 1u);
}

TEST_F(LinkTest, SerializationDelayMatchesBandwidth) {
  // 1000-byte payload + 18 overhead at 10 Mb/s = 814.4 us, plus ~30 us medium
  // latency.
  Time delivered;
  b_.SetReceiveHandler([&](NetDevice&, const EthernetFrame&) { delivered = sim_.Now(); });
  a_.Transmit(MakeFrame(a_.mac(), b_.mac(), 1000));
  sim_.Run();
  const double us = static_cast<double>(delivered.nanos()) / 1000.0;
  EXPECT_GT(us, 814.0);
  EXPECT_LT(us, 900.0);
}

TEST_F(LinkTest, BackToBackFramesSerializeSequentially) {
  std::vector<Time> deliveries;
  b_.SetReceiveHandler([&](NetDevice&, const EthernetFrame&) {
    deliveries.push_back(sim_.Now());
  });
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(a_.Transmit(MakeFrame(a_.mac(), b_.mac(), 1000)));
  }
  sim_.Run();
  ASSERT_EQ(deliveries.size(), 3u);
  // Each frame is separated by at least its serialization time (~814 us).
  EXPECT_GT((deliveries[1] - deliveries[0]).micros(), 700);
  EXPECT_GT((deliveries[2] - deliveries[1]).micros(), 700);
}

TEST_F(LinkTest, QueueOverflowDrops) {
  a_.set_queue_capacity(4);
  int ok = 0;
  for (int i = 0; i < 10; ++i) {
    ok += a_.Transmit(MakeFrame(a_.mac(), b_.mac(), 1000)) ? 1 : 0;
  }
  // One dequeued immediately into transmission + 4 queued... the first frame
  // is popped synchronously, so 5 accepted.
  EXPECT_EQ(ok, 5);
  EXPECT_EQ(a_.counters().dropped_queue, 5u);
  sim_.Run();
  EXPECT_EQ(CountReceived(b_), 5);
}

TEST_F(LinkTest, BringUpTakesConfiguredTime) {
  a_.TakeDown();
  a_.set_bring_up_time(Milliseconds(500));
  a_.set_bring_up_jitter(0.0);
  Time up_at;
  bool up = false;
  a_.BringUp([&] {
    up = true;
    up_at = sim_.Now();
  });
  EXPECT_EQ(a_.state(), NetDevice::State::kBringingUp);
  EXPECT_FALSE(a_.IsUp());
  sim_.Run();
  EXPECT_TRUE(up);
  EXPECT_TRUE(a_.IsUp());
  EXPECT_EQ(up_at.nanos(), Milliseconds(500).nanos());
}

TEST_F(LinkTest, BringUpOnUpDeviceIsImmediate) {
  bool called = false;
  a_.BringUp([&] { called = true; });
  EXPECT_TRUE(called);  // No simulation step needed.
}

TEST_F(LinkTest, TakeDownCancelsInFlightBringUp) {
  a_.TakeDown();
  bool up = false;
  a_.BringUp([&] { up = true; });
  a_.TakeDown();
  sim_.Run();
  EXPECT_FALSE(up);
  EXPECT_EQ(a_.state(), NetDevice::State::kDown);
}

TEST_F(LinkTest, TakeDownDiscardsQueuedFrames) {
  for (int i = 0; i < 3; ++i) {
    a_.Transmit(MakeFrame(a_.mac(), b_.mac(), 1000));
  }
  a_.TakeDown();
  sim_.Run();
  EXPECT_EQ(CountReceived(b_), 0);
}

TEST_F(LinkTest, DetachedDeviceSendsNowhere) {
  a_.AttachTo(nullptr);
  a_.Transmit(MakeFrame(a_.mac(), b_.mac()));
  sim_.Run();
  EXPECT_EQ(CountReceived(b_), 0);
}

TEST_F(LinkTest, ReattachMovesBroadcastDomain) {
  BroadcastMedium other(sim_, "other", EthernetMediumParams());
  a_.AttachTo(&other);
  a_.Transmit(MakeFrame(a_.mac(), MacAddress::Broadcast()));
  sim_.Run();
  EXPECT_EQ(CountReceived(b_), 0);  // b is on the old segment.
}

TEST(RadioTest, RandomDropsOccur) {
  Simulator sim(5);
  MediumParams params = RadioMediumParams();
  params.drop_probability = 0.5;
  BroadcastMedium cell(sim, "cell", params);
  StripRadioDevice tx(sim, "r1", MacAddress::FromId(1));
  StripRadioDevice rx(sim, "r2", MacAddress::FromId(2));
  tx.AttachTo(&cell);
  rx.AttachTo(&cell);
  tx.ForceUp();
  rx.ForceUp();
  tx.set_queue_capacity(256);

  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(tx.Transmit(MakeFrame(tx.mac(), rx.mac(), 10)));
  }
  sim.Run();
  const uint64_t received = rx.counters().rx_frames;
  EXPECT_GT(received, 60u);
  EXPECT_LT(received, 140u);
  EXPECT_EQ(cell.counters().frames_dropped, 200 - received);
}

TEST(RadioTest, RadioIsSlowerThanEthernet) {
  Simulator sim(6);
  BroadcastMedium cell(sim, "cell", RadioMediumParams());
  StripRadioDevice tx(sim, "r1", MacAddress::FromId(1));
  StripRadioDevice rx(sim, "r2", MacAddress::FromId(2));
  tx.AttachTo(&cell);
  rx.AttachTo(&cell);
  tx.ForceUp();
  rx.ForceUp();

  Time delivered;
  rx.SetReceiveHandler([&](NetDevice&, const EthernetFrame&) { delivered = sim.Now(); });
  tx.Transmit(MakeFrame(tx.mac(), rx.mac(), 100));
  sim.Run();
  // ~27 ms serialization at 35 kb/s + ~85 ms air latency.
  EXPECT_GT(delivered.ToMillisF(), 80.0);
  EXPECT_LT(delivered.ToMillisF(), 160.0);
}

TEST(LoopbackTest, FrameComesStraightBack) {
  Simulator sim;
  LoopbackDevice lo(sim);
  lo.ForceUp();
  int received = 0;
  lo.SetReceiveHandler([&](NetDevice&, const EthernetFrame&) { ++received; });
  EthernetFrame frame;
  frame.payload = {1, 2, 3};
  ASSERT_TRUE(lo.Transmit(frame));
  sim.Run();
  EXPECT_EQ(received, 1);
}

TEST(MediumTest, UnmatchedDestinationCounted) {
  Simulator sim;
  BroadcastMedium medium(sim, "seg", EthernetMediumParams());
  EthernetDevice a(sim, "a", MacAddress::FromId(1));
  a.AttachTo(&medium);
  a.ForceUp();
  a.Transmit(MakeFrame(a.mac(), MacAddress::FromId(99)));
  sim.Run();
  EXPECT_EQ(medium.counters().frames_unmatched, 1u);
}

}  // namespace
}  // namespace msn
