// Unit tests for src/telemetry: counter/gauge semantics, the log-bucketed
// histogram's quantile error bound (validated against the exact nearest-rank
// Percentile() from src/util/stats.h), registry snapshot ordering, and
// sampler determinism (same seed => byte-identical exported series).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/telemetry/export.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/time_series.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace msn {
namespace {

// --- Counter / CounterRef -----------------------------------------------------

TEST(CounterTest, AddAndRead) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(CounterRefTest, UnwiredHandleIsNullSafe) {
  CounterRef ref;  // Not bound to any registry.
  ++ref;
  ref += 100;
  EXPECT_EQ(static_cast<uint64_t>(ref), 0u);
}

TEST(CounterRefTest, WiredHandleCountsIntoRegistry) {
  MetricsRegistry registry;
  CounterRef ref = registry.GetCounterRef("ha.requests_received");
  ++ref;
  ++ref;
  ref += 3;
  EXPECT_EQ(static_cast<uint64_t>(ref), 5u);
  EXPECT_EQ(registry.GetCounter("ha.requests_received").value(), 5u);

  // A second ref to the same name shares the same underlying counter.
  CounterRef again = registry.GetCounterRef("ha.requests_received");
  ++again;
  EXPECT_EQ(static_cast<uint64_t>(ref), 6u);
}

// --- Gauge --------------------------------------------------------------------

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.Set(7.0);
  g.Add(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.5);
  EXPECT_FALSE(g.has_probe());
}

TEST(GaugeTest, ProbeReadsCallback) {
  double live = 3.0;
  MetricsRegistry registry;
  Gauge& g = registry.GetProbeGauge("dev.mh.eth0.queue_depth", [&] { return live; });
  EXPECT_TRUE(g.has_probe());
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  live = 11.0;
  EXPECT_DOUBLE_EQ(g.value(), 11.0);
  EXPECT_DOUBLE_EQ(*registry.ReadValue("dev.mh.eth0.queue_depth"), 11.0);
}

// --- MetricsRegistry ----------------------------------------------------------

TEST(MetricsRegistryTest, GetIsCreateOnFirstUseAndStable) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x");
  a.Add(2);
  EXPECT_EQ(&registry.GetCounter("x"), &a);
  EXPECT_EQ(registry.GetCounter("x").value(), 2u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistryTest, TypeOfContainsAndReadValue) {
  MetricsRegistry registry;
  registry.GetCounter("c").Add(4);
  registry.GetGauge("g").Set(2.5);
  Histogram& h = registry.GetHistogram("h");
  h.Record(1.0);
  h.Record(2.0);

  EXPECT_TRUE(registry.Contains("c"));
  EXPECT_FALSE(registry.Contains("missing"));
  EXPECT_EQ(*registry.TypeOf("c"), MetricType::kCounter);
  EXPECT_EQ(*registry.TypeOf("g"), MetricType::kGauge);
  EXPECT_EQ(*registry.TypeOf("h"), MetricType::kHistogram);
  EXPECT_FALSE(registry.TypeOf("missing").has_value());

  // ReadValue: counter/gauge scalar, histogram observation count.
  EXPECT_DOUBLE_EQ(*registry.ReadValue("c"), 4.0);
  EXPECT_DOUBLE_EQ(*registry.ReadValue("g"), 2.5);
  EXPECT_DOUBLE_EQ(*registry.ReadValue("h"), 2.0);
  EXPECT_FALSE(registry.ReadValue("missing").has_value());

  EXPECT_EQ(registry.FindHistogram("h"), &h);
  EXPECT_EQ(registry.FindHistogram("c"), nullptr);

  registry.Remove("g");
  EXPECT_FALSE(registry.Contains("g"));
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistryTest, NamesAndSnapshotAreNameSorted) {
  MetricsRegistry registry;
  // Registered deliberately out of order.
  registry.GetCounter("mh.retransmissions").Add(3);
  registry.GetHistogram("ha.processing_ms").Record(1.5);
  registry.GetGauge("ha.bindings").Set(2);
  registry.GetCounter("ip.mh.datagrams_sent").Add(9);

  const std::vector<std::string> names = registry.Names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "ha.bindings");
  EXPECT_EQ(names[1], "ha.processing_ms");
  EXPECT_EQ(names[2], "ip.mh.datagrams_sent");
  EXPECT_EQ(names[3], "mh.retransmissions");

  const std::vector<MetricSnapshot> snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].name, "ha.bindings");
  EXPECT_EQ(snap[0].type, MetricType::kGauge);
  EXPECT_DOUBLE_EQ(snap[0].value, 2.0);
  EXPECT_EQ(snap[1].type, MetricType::kHistogram);
  ASSERT_TRUE(snap[1].histogram.has_value());
  EXPECT_EQ(snap[1].histogram->count, 1u);
  EXPECT_DOUBLE_EQ(snap[1].histogram->min, 1.5);
  EXPECT_EQ(snap[3].name, "mh.retransmissions");
  EXPECT_DOUBLE_EQ(snap[3].value, 3.0);
}

TEST(MetricsRegistryTest, ScalarSnapshotFiltersByPrefix) {
  MetricsRegistry registry;
  registry.GetCounter("ip.mh.datagrams_sent").Add(9);
  registry.GetCounter("ip.ha.datagrams_sent").Add(4);
  registry.GetGauge("ha.bindings").Set(1);
  registry.GetHistogram("mh.handoff_ms").Record(3.0);

  const auto all = registry.ScalarSnapshot();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_DOUBLE_EQ(all.at("ip.mh.datagrams_sent"), 9.0);
  EXPECT_DOUBLE_EQ(all.at("mh.handoff_ms"), 1.0);  // Histogram => count.

  const auto ip_only = registry.ScalarSnapshot("ip.");
  ASSERT_EQ(ip_only.size(), 2u);
  EXPECT_EQ(ip_only.count("ha.bindings"), 0u);
  EXPECT_DOUBLE_EQ(ip_only.at("ip.ha.datagrams_sent"), 4.0);

  // The map form diffs cleanly: an untouched registry segment diffs empty.
  EXPECT_TRUE(registry.ScalarSnapshot("tcp.").empty());
}

// --- Histogram ----------------------------------------------------------------

TEST(HistogramTest, ExactAggregatesAndEdgeCases) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Quantile(50), 0.0);  // Empty: everything reads zero.
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);

  h.Record(2.0);
  h.Record(8.0);
  h.Record(4.0);
  h.Record(-3.0);  // Negative counts as zero.
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 14.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);

  // p <= 0 is the exact min, p >= 100 the exact max.
  EXPECT_DOUBLE_EQ(h.Quantile(0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(100), 8.0);
  EXPECT_DOUBLE_EQ(h.Quantile(150), 8.0);
}

// The core guarantee: for every quantile, the histogram estimate is within
// `relative_error` of the exact nearest-rank sample value, across
// distributions with very different shapes. Percentile() (the summaries'
// exact statistic) interpolates between the two order statistics bracketing
// the same rank, so the estimate must also land inside that bracket inflated
// by (1 +/- e).
TEST(HistogramTest, QuantileWithinRelativeErrorOfExactPercentile) {
  const double kQuantiles[] = {1, 10, 25, 50, 75, 90, 95, 99, 99.9};
  struct Shape {
    const char* name;
    double relative_error;
  };
  const Shape shapes[] = {{"default", Histogram::kDefaultRelativeError},
                          {"coarse", 0.05}};

  for (const Shape& shape : shapes) {
    for (int dist = 0; dist < 3; ++dist) {
      Rng rng(1234 + static_cast<uint64_t>(dist));
      Histogram h(shape.relative_error);
      std::vector<double> samples;
      samples.reserve(20000);
      for (int i = 0; i < 20000; ++i) {
        double v = 0;
        switch (dist) {
          case 0:  // Uniform latencies, ms scale.
            v = rng.UniformDouble(0.05, 250.0);
            break;
          case 1:  // Exponential inter-arrivals: long tail.
            v = rng.Exponential(12.0);
            break;
          default:  // Lognormal-ish: heavy tail over several decades.
            v = std::exp(rng.Normal(1.0, 1.5));
            break;
        }
        h.Record(v);
        samples.push_back(v);
      }
      ASSERT_EQ(h.count(), samples.size());

      std::vector<double> sorted = samples;
      std::sort(sorted.begin(), sorted.end());
      const size_t n = sorted.size();
      const double e = shape.relative_error;
      for (double p : kQuantiles) {
        const double est = h.Quantile(p);
        // Guaranteed bound vs the exact nearest-rank sample.
        const size_t rank = static_cast<size_t>(std::max<uint64_t>(
            1, static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(n)))));
        const double exact = sorted[rank - 1];
        EXPECT_LE(std::abs(est - exact), e * exact + 1e-12)
            << "dist=" << dist << " shape=" << shape.name << " p=" << p
            << " exact=" << exact << " est=" << est;
        // Consistency with Percentile(): both the interpolated value and the
        // estimate fall in the [sorted[lo], sorted[lo+1]] bracket (the
        // estimate after inflating by the error bound).
        const double interp = Percentile(samples, p);
        const size_t lo =
            static_cast<size_t>(p / 100.0 * static_cast<double>(n - 1));
        const double bracket_lo = sorted[lo];
        const double bracket_hi = sorted[std::min(lo + 1, n - 1)];
        EXPECT_GE(interp, bracket_lo);
        EXPECT_LE(interp, bracket_hi);
        EXPECT_GE(est, bracket_lo * (1.0 - e) - 1e-12)
            << "dist=" << dist << " p=" << p;
        EXPECT_LE(est, bracket_hi * (1.0 + e) + 1e-12)
            << "dist=" << dist << " p=" << p;
      }
    }
  }
}

TEST(HistogramTest, MergesTinyValuesIntoZeroBucket) {
  Histogram h;
  h.Record(0.0);
  h.Record(1e-12);  // Below kMinTrackable: lands in the zero bucket.
  h.Record(5.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.Quantile(0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(100), 5.0);
}

// --- FormatMetricValue --------------------------------------------------------

TEST(FormatMetricValueTest, IntegersPrintWithoutDecimalPoint) {
  EXPECT_EQ(FormatMetricValue(0.0), "0");
  EXPECT_EQ(FormatMetricValue(42.0), "42");
  EXPECT_EQ(FormatMetricValue(-7.0), "-7");
  EXPECT_EQ(FormatMetricValue(2.5), "2.5");
  // Non-finite readings must never corrupt a JSON export.
  EXPECT_EQ(FormatMetricValue(std::nan("")), "0");
}

// --- TimeSeriesSampler --------------------------------------------------------

// One seeded run of a small scenario: a periodic task makes random-sized
// steps on a counter and a gauge; the sampler snapshots both (plus a metric
// that only appears mid-run) every 50 ms for one simulated second.
std::string RunSampledScenario(uint64_t seed) {
  Simulator sim(seed);
  MetricsRegistry registry;
  CounterRef events = registry.GetCounterRef("evt.count");
  Gauge& depth = registry.GetGauge("evt.depth");

  TimeSeriesSampler sampler(sim, registry, Milliseconds(50));
  sampler.Watch("evt.count");
  sampler.Watch("evt.count");  // Duplicate watch is a no-op.
  sampler.Watch("evt.depth");
  sampler.Watch("late.metric");  // Samples as 0 until it exists.
  sampler.Start();

  PeriodicTask churn(sim, Milliseconds(10), [&] {
    events += sim.rng().UniformInt(uint64_t{0}, uint64_t{4});
    depth.Set(static_cast<double>(sim.rng().UniformInt(uint64_t{0}, uint64_t{20})));
  });
  churn.Start();
  sim.Schedule(Milliseconds(500),
               [&] { registry.GetCounter("late.metric").Add(17); });

  sim.RunFor(Seconds(1));
  sampler.Stop();
  return sampler.ToCsv();
}

TEST(TimeSeriesSamplerTest, SameSeedProducesByteIdenticalSeries) {
  const std::string a = RunSampledScenario(97);
  const std::string b = RunSampledScenario(97);
  EXPECT_EQ(a, b);
  // And the seed actually matters — a different seed changes the trajectory.
  EXPECT_NE(a, RunSampledScenario(98));
}

TEST(TimeSeriesSamplerTest, SamplesOnTheSimulatorClock) {
  Simulator sim(1);
  MetricsRegistry registry;
  registry.GetCounter("c").Add(5);

  TimeSeriesSampler sampler(sim, registry, Milliseconds(100));
  sampler.WatchAll();
  sampler.Start();
  sim.RunFor(Seconds(1));
  sampler.Stop();

  ASSERT_EQ(sampler.series().size(), 1u);
  const auto& points = sampler.series()[0].points;
  // Immediate sample at t=0 plus one per 100 ms tick.
  ASSERT_EQ(points.size(), 11u);
  EXPECT_EQ(points.front().t, Time::Zero());
  EXPECT_DOUBLE_EQ(points.front().value, 5.0);
  EXPECT_EQ(points.back().t, Time::Zero() + Seconds(1));

  const std::string csv = sampler.ToCsv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "t_ms,c");
}

// --- BenchReport --------------------------------------------------------------

TEST(BenchReportTest, JsonIsDeterministicAndCarriesAllSections) {
  auto build = [] {
    BenchReport report("unit_test", "telemetry unit-test report");
    report.set_seed(7);
    report.AddParam("iterations", 3);
    report.AddSummary("latency_ms", "ms", std::vector<double>{1.0, 2.0, 3.0, 4.0});
    report.AddRow("cell", {{"lost", uint64_t{2}}, {"note", "a\"b"}});
    MetricsRegistry registry;
    registry.GetCounter("mh.recoveries").Add(2);
    registry.GetHistogram("ha.processing_ms").Record(0.25);
    report.AddMetrics(registry);
    return report.ToJson();
  };
  const std::string json = build();
  EXPECT_EQ(json, build());

  EXPECT_NE(json.find("\"schema\":\"msn-bench-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"bench\":\"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"smoke\":"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"latency_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"mh.recoveries\""), std::string::npos);
  EXPECT_NE(json.find("\"ha.processing_ms\""), std::string::npos);
  // The summary's percentiles are exact nearest-rank over the samples.
  EXPECT_NE(json.find("\"p50\":2"), std::string::npos);
  // Escaping: the row note must survive as a\"b.
  EXPECT_NE(json.find("a\\\"b"), std::string::npos);
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
}

}  // namespace
}  // namespace msn
