// Unit tests for the home agent: registration validation, binding lifecycle,
// proxy ARP behaviour, lifetime expiry, replay rejection.
#include <gtest/gtest.h>

#include "src/mip/home_agent.h"
#include "src/node/udp.h"
#include "src/topo/testbed.h"
#include "src/util/assert.h"

namespace msn {
namespace {

// Drives the HA with hand-built registration requests from a host on the
// home subnet (36.135.0.77), mimicking a mobile host without using the
// MobileHost class.
class HomeAgentFixture : public ::testing::Test {
 protected:
  HomeAgentFixture() {
    TestbedConfig cfg;
    cfg.seed = 5;
    cfg.realistic_delays = false;  // Exact, fast control-plane behaviour.
    tb_ = std::make_unique<Testbed>(cfg);

    // A standalone prober on the home subnet.
    prober_ = std::make_unique<Node>(tb_->sim, "prober");
    dev_ = prober_->AddEthernet("eth0", tb_->net135.get());
    dev_->ForceUp();
    prober_->ConfigureInterface(dev_, "36.135.0.77/16");
    prober_->AddDefaultRoute(Testbed::RouterOn135(), dev_);

    socket_ = std::make_unique<UdpSocket>(prober_->stack());
    MSN_CHECK(socket_->Bind(0)) << "test socket";
    socket_->SetReceiveHandler(
        [this](const std::vector<uint8_t>& data, const UdpSocket::Metadata&) {
          last_reply_ = RegistrationReply::Parse(data);
          ++replies_;
        });
  }

  RegistrationRequest MakeRequest(Ipv4Address home, Ipv4Address careof, uint16_t lifetime,
                                  uint64_t id) {
    RegistrationRequest req;
    req.flags = kMipFlagDecapsulateSelf;
    req.lifetime_sec = lifetime;
    req.home_address = home;
    req.home_agent = tb_->home_agent_address();
    req.care_of_address = careof;
    req.identification = id;
    return req;
  }

  void SendRequest(const RegistrationRequest& req) {
    socket_->SendTo(tb_->home_agent_address(), kMipRegistrationPort, req.Serialize());
  }

  std::unique_ptr<Testbed> tb_;
  std::unique_ptr<Node> prober_;
  EthernetDevice* dev_ = nullptr;
  std::unique_ptr<UdpSocket> socket_;
  std::optional<RegistrationReply> last_reply_;
  int replies_ = 0;
};

TEST_F(HomeAgentFixture, AcceptsValidRegistration) {
  SendRequest(MakeRequest(Testbed::HomeAddress(), Ipv4Address(36, 8, 0, 50), 300, 1));
  tb_->RunFor(Seconds(1));
  ASSERT_TRUE(last_reply_.has_value());
  EXPECT_TRUE(last_reply_->accepted());
  EXPECT_EQ(last_reply_->lifetime_sec, 300);
  EXPECT_EQ(last_reply_->identification, 1u);
  auto binding = tb_->home_agent->GetBinding(Testbed::HomeAddress());
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->care_of, Ipv4Address(36, 8, 0, 50));
  // Proxy ARP is in place on the home device.
  EXPECT_TRUE(tb_->router->stack().arp().IsProxying(tb_->router->FindDevice("eth135"),
                                                    Testbed::HomeAddress()));
}

TEST_F(HomeAgentFixture, ClampsExcessiveLifetime) {
  SendRequest(MakeRequest(Testbed::HomeAddress(), Ipv4Address(36, 8, 0, 50), 65000, 1));
  tb_->RunFor(Seconds(1));
  ASSERT_TRUE(last_reply_.has_value());
  EXPECT_TRUE(last_reply_->accepted());
  EXPECT_EQ(last_reply_->lifetime_sec, 600);  // max_lifetime_sec default.
}

TEST_F(HomeAgentFixture, DeniesForeignHomeAddress) {
  SendRequest(MakeRequest(Ipv4Address(99, 1, 2, 3), Ipv4Address(36, 8, 0, 50), 300, 1));
  tb_->RunFor(Seconds(1));
  ASSERT_TRUE(last_reply_.has_value());
  EXPECT_EQ(last_reply_->code, MipReplyCode::kDeniedUnknownHomeAddress);
  EXPECT_EQ(tb_->home_agent->binding_count(), 0u);
  EXPECT_EQ(tb_->home_agent->counters().registrations_denied, 1u);
}

TEST_F(HomeAgentFixture, AuthorizationCannotExtendServiceOutsideHomeSubnet) {
  // Regression: an explicitly authorized address used to bypass the
  // home-subnet membership check entirely, so the HA would install bindings
  // for addresses it cannot proxy (Config: "Home addresses must fall inside
  // this subnet to be served").
  tb_->home_agent->AuthorizeMobileHost(Ipv4Address(99, 1, 2, 3));
  SendRequest(MakeRequest(Ipv4Address(99, 1, 2, 3), Ipv4Address(36, 8, 0, 50), 300, 1));
  tb_->RunFor(Seconds(1));
  ASSERT_TRUE(last_reply_.has_value());
  EXPECT_EQ(last_reply_->code, MipReplyCode::kDeniedUnknownHomeAddress);
  EXPECT_EQ(tb_->home_agent->binding_count(), 0u);
}

TEST_F(HomeAgentFixture, DeniesRegistrationWithEmptyCareOf) {
  // Regression: a nonzero-lifetime request with care-of 0.0.0.0 used to be
  // accepted, installing a binding that tunneled the MH's traffic to the
  // unspecified address (a black hole).
  SendRequest(MakeRequest(Testbed::HomeAddress(), Ipv4Address::Any(), 300, 1));
  tb_->RunFor(Seconds(1));
  ASSERT_TRUE(last_reply_.has_value());
  EXPECT_EQ(last_reply_->code, MipReplyCode::kDeniedMalformed);
  EXPECT_EQ(tb_->home_agent->binding_count(), 0u);
  EXPECT_FALSE(tb_->home_agent->HasBinding(Testbed::HomeAddress()));
}

TEST_F(HomeAgentFixture, DeniesWrongHomeAgentAddress) {
  auto req = MakeRequest(Testbed::HomeAddress(), Ipv4Address(36, 8, 0, 50), 300, 1);
  req.home_agent = Ipv4Address(1, 2, 3, 4);
  SendRequest(req);
  tb_->RunFor(Seconds(1));
  ASSERT_TRUE(last_reply_.has_value());
  EXPECT_EQ(last_reply_->code, MipReplyCode::kDeniedMalformed);
}

TEST_F(HomeAgentFixture, RejectsReplayedIdentification) {
  SendRequest(MakeRequest(Testbed::HomeAddress(), Ipv4Address(36, 8, 0, 50), 300, 10));
  tb_->RunFor(Seconds(1));
  ASSERT_TRUE(last_reply_->accepted());

  // Same (or older) identification must be rejected.
  SendRequest(MakeRequest(Testbed::HomeAddress(), Ipv4Address(36, 8, 0, 66), 300, 10));
  tb_->RunFor(Seconds(1));
  EXPECT_EQ(last_reply_->code, MipReplyCode::kDeniedIdentificationMismatch);
  // The binding still points at the first care-of address.
  EXPECT_EQ(tb_->home_agent->GetBinding(Testbed::HomeAddress())->care_of,
            Ipv4Address(36, 8, 0, 50));

  SendRequest(MakeRequest(Testbed::HomeAddress(), Ipv4Address(36, 8, 0, 66), 300, 9));
  tb_->RunFor(Seconds(1));
  EXPECT_EQ(last_reply_->code, MipReplyCode::kDeniedIdentificationMismatch);
}

TEST_F(HomeAgentFixture, SimultaneousBindingFlagDowngraded) {
  auto req = MakeRequest(Testbed::HomeAddress(), Ipv4Address(36, 8, 0, 50), 300, 1);
  req.flags |= kMipFlagSimultaneous;
  SendRequest(req);
  tb_->RunFor(Seconds(1));
  ASSERT_TRUE(last_reply_.has_value());
  EXPECT_EQ(last_reply_->code, MipReplyCode::kAcceptedNoSimultaneous);
  EXPECT_TRUE(last_reply_->accepted());
  EXPECT_EQ(tb_->home_agent->binding_count(), 1u);
}

TEST_F(HomeAgentFixture, ReRegistrationUpdatesCareOf) {
  SendRequest(MakeRequest(Testbed::HomeAddress(), Ipv4Address(36, 8, 0, 50), 300, 1));
  tb_->RunFor(Seconds(1));
  SendRequest(MakeRequest(Testbed::HomeAddress(), Ipv4Address(36, 134, 0, 60), 300, 2));
  tb_->RunFor(Seconds(1));
  EXPECT_EQ(tb_->home_agent->GetBinding(Testbed::HomeAddress())->care_of,
            Ipv4Address(36, 134, 0, 60));
  EXPECT_EQ(tb_->home_agent->binding_count(), 1u);
}

TEST_F(HomeAgentFixture, DeregistrationRemovesBindingAndProxy) {
  SendRequest(MakeRequest(Testbed::HomeAddress(), Ipv4Address(36, 8, 0, 50), 300, 1));
  tb_->RunFor(Seconds(1));
  ASSERT_EQ(tb_->home_agent->binding_count(), 1u);

  SendRequest(MakeRequest(Testbed::HomeAddress(), Testbed::HomeAddress(), 0, 2));
  tb_->RunFor(Seconds(1));
  EXPECT_EQ(tb_->home_agent->binding_count(), 0u);
  EXPECT_EQ(tb_->home_agent->counters().deregistrations, 1u);
  EXPECT_FALSE(tb_->router->stack().arp().IsProxying(tb_->router->FindDevice("eth135"),
                                                     Testbed::HomeAddress()));
}

TEST_F(HomeAgentFixture, BindingExpiresAfterLifetime) {
  SendRequest(MakeRequest(Testbed::HomeAddress(), Ipv4Address(36, 8, 0, 50), 5, 1));
  tb_->RunFor(Seconds(1));
  ASSERT_TRUE(tb_->home_agent->HasBinding(Testbed::HomeAddress()));
  tb_->RunFor(Seconds(6));
  EXPECT_FALSE(tb_->home_agent->HasBinding(Testbed::HomeAddress()));
  EXPECT_EQ(tb_->home_agent->counters().bindings_expired, 1u);
}

TEST_F(HomeAgentFixture, RefreshPostponesExpiry) {
  SendRequest(MakeRequest(Testbed::HomeAddress(), Ipv4Address(36, 8, 0, 50), 5, 1));
  tb_->RunFor(Seconds(3));
  SendRequest(MakeRequest(Testbed::HomeAddress(), Ipv4Address(36, 8, 0, 50), 5, 2));
  tb_->RunFor(Seconds(3));
  // The original expiry time has passed but the refresh keeps it alive.
  EXPECT_TRUE(tb_->home_agent->HasBinding(Testbed::HomeAddress()));
  tb_->RunFor(Seconds(4));
  EXPECT_FALSE(tb_->home_agent->HasBinding(Testbed::HomeAddress()));
}

TEST_F(HomeAgentFixture, AuthorizationListRestrictsService) {
  tb_->home_agent->AuthorizeMobileHost(Ipv4Address(36, 135, 0, 99));
  // HomeAddress() (36.135.0.10) is in the home subnet but not authorized.
  SendRequest(MakeRequest(Testbed::HomeAddress(), Ipv4Address(36, 8, 0, 50), 300, 1));
  tb_->RunFor(Seconds(1));
  EXPECT_EQ(last_reply_->code, MipReplyCode::kDeniedUnknownHomeAddress);

  SendRequest(MakeRequest(Ipv4Address(36, 135, 0, 99), Ipv4Address(36, 8, 0, 50), 300, 1));
  tb_->RunFor(Seconds(1));
  EXPECT_TRUE(last_reply_->accepted());
}

TEST_F(HomeAgentFixture, BindingObserverSeesTransitions) {
  std::vector<std::pair<Ipv4Address, Ipv4Address>> transitions;  // (old, new)
  tb_->home_agent->SetBindingObserver(
      [&](Ipv4Address home, Ipv4Address old_careof, Ipv4Address new_careof) {
        EXPECT_EQ(home, Testbed::HomeAddress());
        transitions.emplace_back(old_careof, new_careof);
      });
  SendRequest(MakeRequest(Testbed::HomeAddress(), Ipv4Address(36, 8, 0, 50), 300, 1));
  tb_->RunFor(Seconds(1));
  SendRequest(MakeRequest(Testbed::HomeAddress(), Ipv4Address(36, 134, 0, 60), 300, 2));
  tb_->RunFor(Seconds(1));
  SendRequest(MakeRequest(Testbed::HomeAddress(), Testbed::HomeAddress(), 0, 3));
  tb_->RunFor(Seconds(1));

  ASSERT_EQ(transitions.size(), 3u);
  EXPECT_EQ(transitions[0].first, Ipv4Address::Any());
  EXPECT_EQ(transitions[0].second, Ipv4Address(36, 8, 0, 50));
  EXPECT_EQ(transitions[1].first, Ipv4Address(36, 8, 0, 50));
  EXPECT_EQ(transitions[1].second, Ipv4Address(36, 134, 0, 60));
  EXPECT_EQ(transitions[2].second, Ipv4Address::Any());
}

TEST_F(HomeAgentFixture, MalformedDatagramCountedNotAnswered) {
  socket_->SendTo(tb_->home_agent_address(), kMipRegistrationPort, {1, 2, 3});
  tb_->RunFor(Seconds(1));
  EXPECT_EQ(replies_, 0);
  EXPECT_EQ(tb_->home_agent->counters().requests_received, 1u);
  EXPECT_EQ(tb_->home_agent->counters().registrations_denied, 1u);
}

}  // namespace
}  // namespace msn
