
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dhcp/dhcp.cc" "src/dhcp/CMakeFiles/msn_dhcp.dir/dhcp.cc.o" "gcc" "src/dhcp/CMakeFiles/msn_dhcp.dir/dhcp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/node/CMakeFiles/msn_node.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/msn_link.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/msn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/msn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/msn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
