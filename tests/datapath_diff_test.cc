// Differential forwarding tests: the flow cache, device burst dequeue, and
// inline pipeline dispatch are optimizations, never behavior changes. Every
// pinned fuzz-corpus scenario (plus a spread of generated ones) is run twice
// — once with the full datapath tuning enabled, once with every knob forced
// off — and the two runs must produce byte-identical packet traces at the
// endpoints and identical end-state metrics. A single diverging frame, byte,
// timestamp, or counter fails the test and names the first divergence.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/check/fuzzer.h"
#include "src/check/scenario_gen.h"
#include "src/net/datapath_tuning.h"

namespace msn {
namespace {

// FNV-1a over the payload wire bytes: keeps trace lines compact while any
// single-byte payload difference still flips the line.
uint64_t HashBytes(const uint8_t* data, size_t size) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < size; ++i) {
    h = (h ^ data[i]) * 1099511628211ull;
  }
  return h;
}

struct RunCapture {
  std::vector<std::string> trace;  // One line per frame seen at an endpoint.
  std::map<std::string, double> metrics;
  bool failed = false;
  uint64_t checks = 0;
};

// Runs `spec` with the datapath tuning fully enabled or fully disabled,
// tapping the mobile host's two devices and the correspondent host — the
// endpoints whose wire behavior defines "what the network did".
RunCapture RunWithTuning(const ScenarioSpec& spec, bool optimized) {
  GlobalDatapathTuning().Reset();
  if (!optimized) {
    GlobalDatapathTuning().flow_cache = false;
    GlobalDatapathTuning().device_burst = false;
    GlobalDatapathTuning().inline_pipeline = false;
  }

  RunCapture cap;
  RunOptions options;
  options.instrument = [&cap](Testbed& tb) {
    auto tap_for = [&cap, &tb](const char* dev_name) {
      return [&cap, &tb, dev_name](const EthernetFrame& frame,
                                   NetDevice::TapDirection dir) {
        char line[160];
        std::snprintf(line, sizeof(line),
                      "%s %c t=%lld %s>%s et=%04x len=%zu payload=%016llx",
                      dev_name,
                      dir == NetDevice::TapDirection::kTransmit ? 'T' : 'R',
                      static_cast<long long>(tb.sim.Now().nanos()),
                      frame.src.ToString().c_str(), frame.dst.ToString().c_str(),
                      static_cast<unsigned>(frame.ethertype), frame.payload.size(),
                      static_cast<unsigned long long>(
                          HashBytes(frame.payload.data(), frame.payload.size())));
        std::string entry = line;
        if (frame.payload.size() <= 64) {
          // Small control-plane payloads (ARP, ICMP, registration) get a
          // full hex dump so a divergence names the exact differing byte;
          // bulk frames rely on the hash.
          entry += " hex=";
          char byte[4];
          for (size_t i = 0; i < frame.payload.size(); ++i) {
            std::snprintf(byte, sizeof(byte), "%02x", frame.payload.data()[i]);
            entry += byte;
          }
        }
        cap.trace.emplace_back(std::move(entry));
      };
    };
    tb.mh_eth->SetTap(tap_for("mh_eth"));
    if (tb.mh_radio != nullptr) {
      tb.mh_radio->SetTap(tap_for("mh_radio"));
    }
    tb.ch_dev->SetTap(tap_for("ch"));
  };
  options.on_complete = [&cap](Testbed& tb) {
    for (const auto& [name, value] : tb.metrics.ScalarSnapshot()) {
      // The cache's own accounting is the one namespace allowed to differ
      // between the two runs; everything else must match exactly.
      if (name.rfind("flow_cache.", 0) == 0) {
        continue;
      }
      cap.metrics[name] = value;
    }
  };

  const RunResult result = RunScenario(spec, options);
  cap.failed = result.failed();
  cap.checks = result.report.checks;
  GlobalDatapathTuning().Reset();
  return cap;
}

void ExpectIdentical(const std::string& label, const RunCapture& on,
                     const RunCapture& off) {
  EXPECT_FALSE(on.failed) << label << ": oracle failure with tuning enabled";
  EXPECT_FALSE(off.failed) << label << ": oracle failure with tuning disabled";
  EXPECT_EQ(on.checks, off.checks) << label << ": oracle check counts diverged";

  // Packet traces: find and name the first divergent frame.
  const size_t common = std::min(on.trace.size(), off.trace.size());
  for (size_t i = 0; i < common; ++i) {
    ASSERT_EQ(on.trace[i], off.trace[i])
        << label << ": first trace divergence at frame " << i << " of "
        << common;
  }
  ASSERT_EQ(on.trace.size(), off.trace.size())
      << label << ": trace lengths diverged after " << common
      << " identical frames; next frame on the longer side: "
      << (on.trace.size() > off.trace.size() ? on.trace[common]
                                             : off.trace[common]);

  // End-state metrics: every exported counter/gauge outside flow_cache.*.
  auto it_on = on.metrics.begin();
  auto it_off = off.metrics.begin();
  while (it_on != on.metrics.end() && it_off != off.metrics.end()) {
    ASSERT_EQ(it_on->first, it_off->first) << label << ": metric sets diverged";
    EXPECT_EQ(it_on->second, it_off->second)
        << label << ": metric " << it_on->first << " diverged";
    ++it_on;
    ++it_off;
  }
  EXPECT_TRUE(it_on == on.metrics.end() && it_off == off.metrics.end())
      << label << ": metric sets have different sizes";
}

void DiffScenario(const std::string& label, const ScenarioSpec& spec) {
  const RunCapture on = RunWithTuning(spec, /*optimized=*/true);
  const RunCapture off = RunWithTuning(spec, /*optimized=*/false);
  EXPECT_FALSE(on.trace.empty()) << label << ": endpoints saw no traffic at all";
  ExpectIdentical(label, on, off);
}

TEST(DatapathDiffTest, EveryCorpusScenarioIsTuningInvariant) {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(MSN_CORPUS_DIR)) {
    if (entry.path().extension() == ".seed") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  ASSERT_GE(files.size(), 3u) << "corpus went missing from " << MSN_CORPUS_DIR;

  for (const auto& path : files) {
    std::ifstream in(path);
    ASSERT_TRUE(in) << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    const auto spec = ScenarioSpec::Parse(buffer.str(), &error);
    ASSERT_TRUE(spec.has_value()) << path << ": " << error;
    DiffScenario(path.filename().string(), *spec);
  }
}

TEST(DatapathDiffTest, GeneratedScenariosAreTuningInvariant) {
  // A seed spread on top of the pinned corpus, so shapes the corpus doesn't
  // pin (radio handoffs, overload bursts, mobility corridors) get the same
  // on/off treatment every run.
  for (const uint64_t seed : {11ull, 42ull, 1996ull, 20260809ull}) {
    DiffScenario("seed-" + std::to_string(seed), GenerateScenario(seed));
  }
}

}  // namespace
}  // namespace msn
