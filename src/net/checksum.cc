#include "src/net/checksum.h"

namespace msn {

void InternetChecksum::Add(const uint8_t* data, size_t len) {
  size_t i = 0;
  if (odd_ && len > 0) {
    sum_ += (static_cast<uint16_t>(pending_) << 8) | data[0];
    odd_ = false;
    i = 1;
  }
  for (; i + 1 < len; i += 2) {
    sum_ += (static_cast<uint16_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < len) {
    pending_ = data[i];
    odd_ = true;
  }
}

void InternetChecksum::AddU16(uint16_t v) {
  uint8_t b[2] = {static_cast<uint8_t>(v >> 8), static_cast<uint8_t>(v & 0xff)};
  Add(b, 2);
}

void InternetChecksum::AddU32(uint32_t v) {
  AddU16(static_cast<uint16_t>(v >> 16));
  AddU16(static_cast<uint16_t>(v & 0xffff));
}

uint16_t InternetChecksum::Fold() const {
  uint64_t sum = sum_;
  if (odd_) {
    sum += static_cast<uint16_t>(pending_) << 8;
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum & 0xffff);
}

uint16_t ComputeInternetChecksum(const uint8_t* data, size_t len) {
  InternetChecksum cs;
  cs.Add(data, len);
  return cs.Fold();
}

uint16_t ComputeInternetChecksum(const std::vector<uint8_t>& data) {
  return ComputeInternetChecksum(data.data(), data.size());
}

bool VerifyInternetChecksum(const uint8_t* data, size_t len) {
  return ComputeInternetChecksum(data, len) == 0;
}

uint16_t IncrementalChecksumUpdate(uint16_t old_checksum, uint16_t old_word, uint16_t new_word) {
  // RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m'), computed in one's complement.
  uint32_t sum = static_cast<uint16_t>(~old_checksum);
  sum += static_cast<uint16_t>(~old_word);
  sum += new_word;
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum & 0xffff);
}

}  // namespace msn
