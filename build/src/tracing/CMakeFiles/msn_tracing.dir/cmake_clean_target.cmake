file(REMOVE_RECURSE
  "libmsn_tracing.a"
)
