// Unit tests for the routing table (longest-prefix match, the paper's
// unmodified kernel table).
#include <gtest/gtest.h>

#include "src/link/link_device.h"
#include "src/node/routing_table.h"
#include "src/sim/simulator.h"

namespace msn {
namespace {

class RoutingTest : public ::testing::Test {
 protected:
  RoutingTest()
      : sim_(1),
        eth0_(sim_, "eth0", MacAddress::FromId(1)),
        eth1_(sim_, "eth1", MacAddress::FromId(2)) {}

  Simulator sim_;
  EthernetDevice eth0_, eth1_;
  RoutingTable table_;
};

TEST_F(RoutingTest, LongestPrefixWins) {
  table_.Add({Subnet::MustParse("0.0.0.0/0"), Ipv4Address(10, 0, 0, 1), &eth0_, {}, 0});
  table_.Add({Subnet::MustParse("36.0.0.0/8"), Ipv4Address(36, 0, 0, 1), &eth0_, {}, 0});
  table_.Add({Subnet::MustParse("36.135.0.0/16"), Ipv4Address::Any(), &eth1_, {}, 0});

  auto r = table_.Lookup(Ipv4Address(36, 135, 0, 10));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->device, &eth1_);
  EXPECT_TRUE(r->gateway.IsAny());

  r = table_.Lookup(Ipv4Address(36, 8, 0, 1));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->gateway, Ipv4Address(36, 0, 0, 1));

  r = table_.Lookup(Ipv4Address(171, 64, 0, 1));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->gateway, Ipv4Address(10, 0, 0, 1));
}

TEST_F(RoutingTest, HostRouteBeatsSubnetRoute) {
  table_.Add({Subnet::MustParse("36.135.0.0/16"), Ipv4Address::Any(), &eth0_, {}, 0});
  table_.Add({Subnet::MustParse("36.135.0.10/32"), Ipv4Address::Any(), &eth1_, {}, 0});
  auto r = table_.Lookup(Ipv4Address(36, 135, 0, 10));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->device, &eth1_);
}

TEST_F(RoutingTest, EmptyTableHasNoRoute) {
  EXPECT_FALSE(table_.Lookup(Ipv4Address(1, 2, 3, 4)).has_value());
}

TEST_F(RoutingTest, MetricBreaksTies) {
  table_.Add({Subnet::MustParse("36.8.0.0/16"), Ipv4Address::Any(), &eth0_, {}, 5});
  table_.Add({Subnet::MustParse("36.8.0.0/16"), Ipv4Address::Any(), &eth1_, {}, 1});
  auto r = table_.Lookup(Ipv4Address(36, 8, 0, 1));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->device, &eth1_);
}

TEST_F(RoutingTest, RemoveByDestAndDevice) {
  table_.Add({Subnet::MustParse("36.8.0.0/16"), Ipv4Address::Any(), &eth0_, {}, 0});
  table_.Add({Subnet::MustParse("36.8.0.0/16"), Ipv4Address::Any(), &eth1_, {}, 0});
  EXPECT_EQ(table_.Remove(Subnet::MustParse("36.8.0.0/16"), &eth0_), 1u);
  EXPECT_EQ(table_.size(), 1u);
  EXPECT_EQ(table_.Remove(Subnet::MustParse("36.8.0.0/16")), 1u);
  EXPECT_EQ(table_.size(), 0u);
}

TEST_F(RoutingTest, RemoveForDevice) {
  table_.Add({Subnet::MustParse("36.8.0.0/16"), Ipv4Address::Any(), &eth0_, {}, 0});
  table_.Add({Subnet::MustParse("0.0.0.0/0"), Ipv4Address(36, 8, 0, 1), &eth0_, {}, 0});
  table_.Add({Subnet::MustParse("36.135.0.0/16"), Ipv4Address::Any(), &eth1_, {}, 0});
  EXPECT_EQ(table_.RemoveForDevice(&eth0_), 2u);
  EXPECT_EQ(table_.size(), 1u);
}

TEST_F(RoutingTest, PreferredSourcePropagates) {
  table_.Add({Subnet::MustParse("36.8.0.0/16"), Ipv4Address::Any(), &eth0_,
              Ipv4Address(36, 8, 0, 50), 0});
  auto r = table_.Lookup(Ipv4Address(36, 8, 0, 1));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->pref_src, Ipv4Address(36, 8, 0, 50));
}

TEST_F(RoutingTest, ToStringListsEntries) {
  table_.Add({Subnet::MustParse("36.8.0.0/16"), Ipv4Address(1, 2, 3, 4), &eth0_, {}, 2});
  const std::string dump = table_.ToString();
  EXPECT_NE(dump.find("36.8.0.0/16"), std::string::npos);
  EXPECT_NE(dump.find("1.2.3.4"), std::string::npos);
  EXPECT_NE(dump.find("eth0"), std::string::npos);
}

}  // namespace
}  // namespace msn
