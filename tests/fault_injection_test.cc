// Tests for the fault-injection subsystem (src/fault/): Gilbert-Elliott burst
// loss, duplication, reordering, corruption, blackouts, the declarative fault
// schedule, determinism, and the tagged drop accounting in medium + pcap.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "src/fault/fault_injector.h"
#include "src/fault/fault_schedule.h"
#include "src/node/icmp.h"
#include "src/node/udp.h"
#include "src/topo/testbed.h"
#include "src/tracing/pcap.h"
#include "src/tracing/probe.h"

namespace msn {
namespace {

class FaultInjectionFixture : public ::testing::Test {
 protected:
  void Build(uint64_t seed = 7, uint16_t lifetime_sec = 300) {
    TestbedConfig cfg;
    cfg.seed = seed;
    cfg.realistic_delays = false;
    cfg.mh_lifetime_sec = lifetime_sec;
    tb_ = std::make_unique<Testbed>(cfg);
    tb_->StartMobileAtHome();
    tb_->StartMobileOnWired(50);
    ASSERT_TRUE(tb_->mobile->registered());
    injector_ = std::make_unique<FaultInjector>(tb_->sim, *tb_->net8);
  }

  // One blocking ping MH -> CH through the mobile-IP path.
  bool PingCorrespondent(Duration timeout = Seconds(2)) {
    Pinger pinger(tb_->mh->stack());
    bool done = false;
    bool ok = false;
    pinger.Ping(tb_->ch_address(), timeout, [&](const Pinger::Result& result) {
      done = true;
      ok = result.success;
    });
    tb_->RunFor(timeout + Milliseconds(100));
    EXPECT_TRUE(done);
    return ok;
  }

  std::unique_ptr<Testbed> tb_;
  std::unique_ptr<FaultInjector> injector_;
};

TEST_F(FaultInjectionFixture, BurstLossDropsFramesAndIsAccountedAsFault) {
  Build();
  FaultProfile profile;
  profile.burst_loss = GilbertElliottParams{0.2, 0.3, 0.0, 1.0};
  injector_->SetProfile(profile);

  ProbeEchoServer echo(*tb_->mh, 7);
  ProbeSender sender(*tb_->ch, ProbeSender::Config{Testbed::HomeAddress(), 7,
                                                   Milliseconds(50)});
  sender.Start();
  tb_->RunFor(Seconds(10));
  sender.Stop();
  tb_->RunFor(Seconds(1));

  EXPECT_GT(injector_->counters().burst_drops, 0u);
  EXPECT_GT(sender.TotalLost(), 0u);
  EXPECT_GT(sender.received(), 0u);  // The good state lets traffic through.
  // Loss accounting: net8 has no random loss, so every medium drop must be
  // attributed to the injector, never mixed into frames_dropped.
  EXPECT_EQ(tb_->net8->counters().frames_dropped, 0u);
  EXPECT_EQ(tb_->net8->counters().frames_fault_dropped,
            injector_->counters().burst_drops);
}

TEST_F(FaultInjectionFixture, CorruptionIsCaughtByChecksums) {
  Build();
  UdpSocket server(tb_->ch->stack());
  ASSERT_TRUE(server.Bind(7777));
  uint64_t received = 0;
  server.SetReceiveHandler(
      [&](const std::vector<uint8_t>&, const UdpSocket::Metadata&) { ++received; });
  UdpSocket client(tb_->mh->stack());

  // Pre-warm ARP caches along the path so corrupted ARP frames cannot stall
  // the experiment.
  for (int i = 0; i < 3; ++i) {
    client.SendTo(tb_->ch_address(), 7777, {0xaa});
    tb_->RunFor(Milliseconds(200));
  }
  const uint64_t received_clean = received;
  EXPECT_GT(received_clean, 0u);

  FaultProfile profile;
  profile.corrupt_probability = 0.5;
  injector_->SetProfile(profile);
  for (int i = 0; i < 40; ++i) {
    client.SendTo(tb_->ch_address(), 7777, {0xbb, static_cast<uint8_t>(i)});
    tb_->RunFor(Milliseconds(100));
  }
  injector_->ClearProfile();
  tb_->RunFor(Seconds(1));

  EXPECT_GT(injector_->counters().corruptions, 0u);
  // A flipped bit must never be delivered as valid data: either the IP
  // header checksum or the UDP checksum catches it and the packet is
  // dropped as bad.
  const uint64_t bad = tb_->router->stack().counters().drop_bad_packet +
                       tb_->ch->stack().counters().drop_bad_packet +
                       tb_->mh->stack().counters().drop_bad_packet;
  EXPECT_GT(bad, 0u);
  EXPECT_LT(received - received_clean, 40u);

  // Clean channel again: traffic flows.
  const uint64_t before = received;
  client.SendTo(tb_->ch_address(), 7777, {0xcc});
  tb_->RunFor(Seconds(1));
  EXPECT_EQ(received, before + 1);
}

TEST_F(FaultInjectionFixture, DuplicatedRegistrationRepliesAreRejected) {
  Build(/*seed=*/7, /*lifetime_sec=*/5);
  FaultProfile profile;
  profile.duplicate_probability = 1.0;
  injector_->SetProfile(profile);

  // Two renewal cycles under full duplication: every request reaches the HA
  // twice (the second copy is denied as a replay) and every reply reaches
  // the MH twice (the second copy must be dropped, not re-processed).
  tb_->RunFor(Seconds(10));

  EXPECT_GT(injector_->counters().duplicates, 0u);
  EXPECT_GE(tb_->mobile->counters().duplicate_replies_dropped +
                tb_->mobile->counters().stale_replies_dropped,
            1u);
  EXPECT_TRUE(tb_->mobile->registered());
  auto binding = tb_->home_agent->GetBinding(Testbed::HomeAddress());
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->care_of, tb_->mobile->care_of());
}

TEST_F(FaultInjectionFixture, ReorderingDelaysButDeliversTraffic) {
  Build();
  FaultProfile profile;
  profile.reorder_probability = 1.0;
  profile.reorder_extra_latency = Milliseconds(300);
  injector_->SetProfile(profile);

  ProbeEchoServer echo(*tb_->mh, 7);
  ProbeSender sender(*tb_->ch, ProbeSender::Config{Testbed::HomeAddress(), 7,
                                                   Milliseconds(100)});
  sender.Start();
  tb_->RunFor(Seconds(5));
  sender.Stop();
  // Generous drain: queued copies may carry up to 2 x 300 ms extra per hop.
  tb_->RunFor(Seconds(3));

  EXPECT_GT(injector_->counters().reorders, 0u);
  EXPECT_EQ(sender.TotalLost(), 0u);  // Reordering delays, never drops.
  EXPECT_GT(sender.received(), 0u);
}

TEST_F(FaultInjectionFixture, BlackoutSilencesTheLinkThenRecovers) {
  Build();
  ASSERT_TRUE(PingCorrespondent());

  injector_->BlackoutFor(Seconds(2));
  EXPECT_TRUE(injector_->blackout_active());
  EXPECT_FALSE(PingCorrespondent(Seconds(1)));
  EXPECT_GT(injector_->counters().blackout_drops, 0u);

  tb_->RunFor(Seconds(2));  // Past the scheduled end.
  EXPECT_FALSE(injector_->blackout_active());
  EXPECT_TRUE(PingCorrespondent());
}

TEST_F(FaultInjectionFixture, PcapTagsInjectedDrops) {
  Build();
  PacketCapture capture;
  capture.AttachMediumDrops(tb_->sim, tb_->net8.get());

  injector_->BlackoutFor(Seconds(1));
  PingCorrespondent(Seconds(1));
  tb_->RunFor(Seconds(1));

  const std::string trace = capture.Render();
  EXPECT_NE(trace.find("dropped: fault"), std::string::npos);
  EXPECT_GT(capture.size(), 0u);
  EXPECT_EQ(tb_->net8->counters().frames_fault_dropped,
            injector_->counters().blackout_drops);
}

// Same seed, same schedule -> bit-identical event trace and fault counters.
TEST(FaultScheduleTest, ChaosRunsAreDeterministic) {
  auto run = [] {
    TestbedConfig cfg;
    cfg.seed = 42;
    cfg.realistic_delays = false;
    Testbed tb(cfg);
    tb.StartMobileAtHome();
    tb.StartMobileOnWired(50);
    FaultInjector injector(tb.sim, *tb.net8);

    FaultProfile bursty;
    bursty.burst_loss = GilbertElliottParams{0.1, 0.25, 0.0, 1.0};
    bursty.duplicate_probability = 0.05;
    FaultSchedule schedule;
    schedule.Profile(Seconds(1), injector, bursty)
        .Blackout(Seconds(3), injector, Milliseconds(1500))
        .ClearProfile(Seconds(6), injector);
    schedule.Arm(tb.sim);

    ProbeEchoServer echo(*tb.mh, 7);
    ProbeSender sender(*tb.ch, ProbeSender::Config{Testbed::HomeAddress(), 7,
                                                   Milliseconds(50)});
    sender.Start();
    tb.RunFor(Seconds(8));
    sender.Stop();
    tb.RunFor(Seconds(1));

    return std::make_tuple(schedule.Trace(), injector.counters().frames_seen,
                           injector.counters().burst_drops,
                           injector.counters().blackout_drops,
                           injector.counters().duplicates, sender.received(),
                           sender.TotalLost(),
                           tb.net8->counters().frames_fault_dropped);
  };

  const auto first = run();
  const auto second = run();
  EXPECT_EQ(std::get<0>(first), std::get<0>(second));
  EXPECT_FALSE(std::get<0>(first).empty());
  EXPECT_EQ(first, second);
}

TEST(FaultScheduleTest, LogRecordsFiredEventsInOrder) {
  Simulator sim(3);
  MediumParams params;
  BroadcastMedium medium(sim, "m0", params);
  FaultInjector injector(sim, medium);

  FaultSchedule schedule;
  int custom_fired = 0;
  schedule.Blackout(Seconds(1), injector, Milliseconds(500))
      .At(Seconds(2), "custom event", [&] { ++custom_fired; });
  EXPECT_EQ(schedule.pending_events(), 2u);
  schedule.Arm(sim);
  sim.RunFor(Seconds(3));

  EXPECT_EQ(custom_fired, 1);
  ASSERT_EQ(schedule.log().size(), 2u);
  EXPECT_EQ(schedule.log()[0].at, Time::Zero() + Seconds(1));
  EXPECT_EQ(schedule.log()[1].description, "custom event");
  EXPECT_FALSE(injector.blackout_active());
}

}  // namespace
}  // namespace msn
