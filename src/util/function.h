// UniqueFunction: a move-only `void()` callable with small-buffer storage.
//
// The event queue stores one callback per scheduled event directly inside its
// heap items. std::function is copyable, which forces every capture to be
// copyable and (for most captures) heap-allocates; this wrapper accepts
// move-only captures (Packet, unique_ptr, sockets) and keeps callables up to
// kInlineBytes inline, so the common scheduling path does not allocate.
#ifndef MSN_SRC_UTIL_FUNCTION_H_
#define MSN_SRC_UTIL_FUNCTION_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace msn {

class UniqueFunction {
 public:
  // Large enough for a handful of captured pointers plus a Packet-sized
  // handle; measured against the event-engine microbench before changing.
  static constexpr size_t kInlineBytes = 80;

  UniqueFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = &kHeapOps<Fn>;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { MoveFrom(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { Reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Moves the callable from `from` into raw `to` storage, then destroys the
    // moved-from object.
    void (*relocate)(void* from, void* to);
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* storage) { (*std::launder(reinterpret_cast<Fn*>(storage)))(); },
      [](void* from, void* to) {
        Fn* src = std::launder(reinterpret_cast<Fn*>(from));
        ::new (to) Fn(std::move(*src));
        src->~Fn();
      },
      [](void* storage) { std::launder(reinterpret_cast<Fn*>(storage))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* storage) { (**reinterpret_cast<Fn**>(storage))(); },
      [](void* from, void* to) {
        *reinterpret_cast<Fn**>(to) = *reinterpret_cast<Fn**>(from);
      },
      [](void* storage) { delete *reinterpret_cast<Fn**>(storage); },
  };

  void MoveFrom(UniqueFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.storage_, storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes] = {};
  const Ops* ops_ = nullptr;
};

}  // namespace msn

#endif  // MSN_SRC_UTIL_FUNCTION_H_
