#!/usr/bin/env python3
"""Self-test for tools/msn_lint.py: one positive and one allowlisted/clean
negative fixture per rule, plus CLI exit-code behaviour. Registered in ctest
as `msn_lint_test` so tier-1 runs it alongside the C++ suites."""

import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import msn_lint  # noqa: E402


def run_lint(root: Path, paths=("src",), with_retired=False):
    return msn_lint.lint_paths(root, list(paths), with_retired=with_retired)


def rules_of(violations):
    return [v.rule for v in violations]


class FixtureTree:
    """Builds a throwaway repo-shaped tree to lint."""

    def __init__(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="msn_lint_test_")
        self.root = Path(self._tmp.name)

    def write(self, rel: str, content: str) -> Path:
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
        return path

    def cleanup(self):
        self._tmp.cleanup()


class MsnLintTest(unittest.TestCase):
    def setUp(self):
        self.tree = FixtureTree()
        self.addCleanup(self.tree.cleanup)

    # --- determinism/wall-clock (retired; fallback behind --with-retired) ---

    def test_wall_clock_flagged(self):
        self.tree.write("src/node/bad.cc", "void f() { long t = time(nullptr); (void)t; }\n")
        self.assertEqual(rules_of(run_lint(self.tree.root, with_retired=True)),
                         ["determinism/wall-clock"])

    def test_chrono_clocks_flagged(self):
        self.tree.write("src/node/bad.cc",
                        "auto t = std::chrono::steady_clock::now();\n"
                        "auto u = std::chrono::system_clock::now();\n")
        self.assertEqual(rules_of(run_lint(self.tree.root, with_retired=True)),
                         ["determinism/wall-clock", "determinism/wall-clock"])

    def test_wall_clock_in_comment_not_flagged(self):
        self.tree.write("src/node/ok.cc",
                        "// Never call time(nullptr) here; the sim clock rules.\n"
                        "int f();\n")
        self.assertEqual(run_lint(self.tree.root, with_retired=True), [])

    def test_wall_clock_allowlisted_inline(self):
        self.tree.write("src/node/ok.cc",
                        "long t = time(nullptr);  // msn-lint: allow(determinism/wall-clock)\n")
        self.assertEqual(run_lint(self.tree.root, with_retired=True), [])

    def test_identifier_suffix_time_not_flagged(self):
        self.tree.write("src/node/ok.cc", "set_bring_up_time(d); auto x = bring_up_time();\n")
        self.assertEqual(run_lint(self.tree.root, with_retired=True), [])

    def test_retired_rules_skipped_by_default(self):
        # msn_analyze owns the determinism rules now; the default lint run
        # must not double-report them.
        self.tree.write("src/node/bad.cc",
                        "long t = time(nullptr);\n"
                        "int a = std::rand();\n")
        self.assertEqual(run_lint(self.tree.root), [])

    # --- determinism/ambient-rng (retired; fallback behind --with-retired) --

    def test_std_rand_and_random_device_flagged(self):
        self.tree.write("src/link/bad.cc",
                        "int a = std::rand();\n"
                        "std::random_device rd;\n"
                        "std::mt19937 gen(42);\n")
        self.assertEqual(rules_of(run_lint(self.tree.root, with_retired=True)),
                         ["determinism/ambient-rng"] * 3)

    def test_msn_rng_not_flagged(self):
        self.tree.write("src/link/ok.cc",
                        '#include "src/util/rng.h"\n'
                        "double d = rng_.UniformDouble();\n")
        self.assertEqual(run_lint(self.tree.root, with_retired=True), [])

    def test_rng_allow_comment_on_previous_line(self):
        self.tree.write("src/link/ok.cc",
                        "// msn-lint: allow(determinism/ambient-rng)\n"
                        "std::mt19937 gen(seed);\n")
        self.assertEqual(run_lint(self.tree.root, with_retired=True), [])

    # --- layering/upward-include --------------------------------------------

    def test_upward_include_flagged(self):
        self.tree.write("src/net/bad.cc", '#include "src/mip/home_agent.h"\n')
        self.assertEqual(rules_of(run_lint(self.tree.root)), ["layering/upward-include"])

    def test_peer_rank_include_flagged(self):
        # net and sim share a rank; neither may include the other.
        self.tree.write("src/net/bad.cc", '#include "src/sim/time.h"\n')
        self.assertEqual(rules_of(run_lint(self.tree.root)), ["layering/upward-include"])

    def test_downward_and_same_dir_includes_ok(self):
        self.tree.write("src/mip/ok.cc",
                        '#include "src/mip/messages.h"\n'
                        '#include "src/net/headers.h"\n'
                        '#include "src/util/rng.h"\n')
        self.assertEqual(run_lint(self.tree.root), [])

    def test_unknown_layer_flagged(self):
        self.tree.write("src/node/bad.cc", '#include "src/quantum/teleport.h"\n')
        self.assertEqual(rules_of(run_lint(self.tree.root)), ["layering/upward-include"])

    # --- header/guard --------------------------------------------------------

    def test_wrong_guard_name_flagged(self):
        self.tree.write("src/net/thing.h",
                        "#ifndef WRONG_GUARD_H\n#define WRONG_GUARD_H\n#endif\n")
        self.assertEqual(rules_of(run_lint(self.tree.root)), ["header/guard"])

    def test_pragma_once_flagged(self):
        self.tree.write("src/net/thing.h", "#pragma once\nint x;\n")
        self.assertEqual(rules_of(run_lint(self.tree.root)), ["header/guard"])

    def test_missing_define_flagged(self):
        self.tree.write("src/net/thing.h",
                        "#ifndef MSN_SRC_NET_THING_H_\n#include <vector>\n#endif\n")
        self.assertEqual(rules_of(run_lint(self.tree.root)), ["header/guard"])

    def test_correct_guard_ok(self):
        self.tree.write("src/net/thing.h",
                        "// A comment first is fine.\n"
                        "#ifndef MSN_SRC_NET_THING_H_\n"
                        "#define MSN_SRC_NET_THING_H_\n"
                        "int x;\n"
                        "#endif  // MSN_SRC_NET_THING_H_\n")
        self.assertEqual(run_lint(self.tree.root), [])

    # --- header/using-namespace ---------------------------------------------

    def test_using_namespace_in_header_flagged(self):
        self.tree.write("src/net/thing.h",
                        "#ifndef MSN_SRC_NET_THING_H_\n"
                        "#define MSN_SRC_NET_THING_H_\n"
                        "using namespace std;\n"
                        "#endif\n")
        self.assertEqual(rules_of(run_lint(self.tree.root)), ["header/using-namespace"])

    def test_using_namespace_in_cc_not_flagged(self):
        self.tree.write("src/net/thing.cc", "using namespace std::literals;\n")
        self.assertEqual(run_lint(self.tree.root), [])

    def test_using_declaration_in_header_ok(self):
        self.tree.write("src/net/thing.h",
                        "#ifndef MSN_SRC_NET_THING_H_\n"
                        "#define MSN_SRC_NET_THING_H_\n"
                        "using MipAuthKey = int;\n"
                        "#endif\n")
        self.assertEqual(run_lint(self.tree.root), [])

    # --- telemetry/metric-name ----------------------------------------------

    def test_bad_metric_names_flagged(self):
        self.tree.write("src/mip/bad.cc",
                        'auto& a = reg.GetCounter("HA.Requests");\n'
                        'auto& b = reg.GetGauge("bindings");\n'
                        'auto& c = reg.GetHistogram("ha processing ms");\n')
        self.assertEqual(rules_of(run_lint(self.tree.root)), ["telemetry/metric-name"] * 3)

    def test_good_metric_names_ok(self):
        self.tree.write("src/mip/ok.cc",
                        'auto& a = reg.GetCounter("ha.requests_received");\n'
                        'auto& b = reg.GetGauge("dev.mh.eth0.queue_depth");\n'
                        'auto r = reg.GetCounterRef(prefix + "drop_ttl");\n'
                        'auto& h = reg.GetHistogram("mh.handoff_ms", 0.01);\n')
        self.assertEqual(run_lint(self.tree.root), [])

    def test_concatenated_prefix_charset_enforced(self):
        self.tree.write("src/mip/bad.cc", 'auto& a = reg.GetCounter("IP." + name);\n')
        self.assertEqual(rules_of(run_lint(self.tree.root)), ["telemetry/metric-name"])

    def test_unregistered_namespace_flagged(self):
        self.tree.write("src/mip/bad.cc",
                        'auto& a = reg.GetCounter("bogus.requests");\n'
                        'auto& b = reg.GetGauge("arp." + name);\n')
        self.assertEqual(rules_of(run_lint(self.tree.root)),
                         ["telemetry/metric-name"] * 2)

    def test_check_namespace_ok(self):
        self.tree.write("src/check/ok.cc",
                        'auto& a = reg.GetCounter("check.oracle_checks");\n'
                        'auto& b = reg.GetCounterRef("check." + oracle);\n')
        self.assertEqual(run_lint(self.tree.root), [])

    def test_registered_subnamespaces_ok(self):
        self.tree.write("src/mip/ok.cc",
                        'auto& a = reg.GetCounter("ha.admission.denied");\n'
                        'auto& b = reg.GetGauge("ha.shard.0.queue_depth");\n'
                        'auto& c = reg.GetCounterRef("ha.backup.shard.15.processed");\n')
        self.assertEqual(run_lint(self.tree.root), [])

    def test_digit_segment_outside_indexed_prefix_flagged(self):
        self.tree.write("src/mip/bad.cc",
                        'auto& a = reg.GetGauge("ip.queue.0.depth");\n'
                        'auto& b = reg.GetCounter("ha.shard.0");\n'
                        'auto& c = reg.GetCounter("ha.shard.x.processed");\n'
                        'auto& d = reg.GetGauge("ha.shard.0.1.depth");\n')
        self.assertEqual(rules_of(run_lint(self.tree.root)),
                         ["telemetry/metric-name"] * 4)

    # --- perf/frame-by-value ------------------------------------------------

    def test_frame_by_value_flagged(self):
        self.tree.write("src/node/bad.cc",
                        "void Handle(EthernetFrame frame) {}\n"
                        "void Send(NetDevice* dev, Packet wire, int x) {}\n")
        self.assertEqual(rules_of(run_lint(self.tree.root)),
                         ["perf/frame-by-value"] * 2)

    def test_frame_by_const_value_flagged(self):
        self.tree.write("src/node/bad.cc", "void f(const Packet wire) {}\n")
        self.assertEqual(rules_of(run_lint(self.tree.root)), ["perf/frame-by-value"])

    def test_frame_references_and_pointers_ok(self):
        self.tree.write("src/node/ok.cc",
                        "void a(const EthernetFrame& frame) {}\n"
                        "void b(EthernetFrame&& frame) {}\n"
                        "void c(Packet* wire) {}\n"
                        "void d(const Packet& payload, NetDevice* dev) {}\n")
        self.assertEqual(run_lint(self.tree.root), [])

    def test_frame_by_value_wrapped_signature_flagged(self):
        # The parameter list is split across lines; the finding lands on the
        # line holding the parameter itself.
        path = self.tree.write("src/node/bad.cc",
                               "void Transmit(NetDevice* device,\n"
                               "              Packet wire,\n"
                               "              MacAddress dst) {}\n")
        violations = run_lint(self.tree.root)
        self.assertEqual(rules_of(violations), ["perf/frame-by-value"])
        self.assertEqual(violations[0].line, 2)
        self.assertEqual(violations[0].path, path)

    def test_frame_local_variable_not_flagged(self):
        self.tree.write("src/node/ok.cc",
                        "void f() {\n"
                        "  EthernetFrame frame;\n"
                        "  Packet wire = Packet::Allocate(64);\n"
                        "  (void)frame; (void)wire;\n"
                        "}\n")
        self.assertEqual(run_lint(self.tree.root), [])

    def test_frame_by_value_lambda_param_flagged(self):
        self.tree.write("src/node/bad.cc",
                        "auto cb = [](EthernetFrame frame) { (void)frame; };\n")
        self.assertEqual(rules_of(run_lint(self.tree.root)), ["perf/frame-by-value"])

    def test_frame_by_value_allow_comment(self):
        self.tree.write("src/node/ok.cc",
                        "// msn-lint: allow(perf/frame-by-value) — ownership sink.\n"
                        "void Sink(Packet wire) {}\n")
        self.assertEqual(run_lint(self.tree.root), [])

    def test_frame_outside_src_not_flagged(self):
        self.tree.write("tests/whatever.cc", "void f(Packet wire) {}\n")
        self.assertEqual(run_lint(self.tree.root, ["tests"]), [])

    # --- CLI ----------------------------------------------------------------

    def test_cli_exit_codes_and_output(self):
        self.tree.write("src/node/bad.cc", "long t = time(nullptr);\n")
        tool = REPO_ROOT / "tools" / "msn_lint.py"
        proc = subprocess.run(
            [sys.executable, str(tool), "--root", str(self.tree.root),
             "--with-retired", "src"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("[determinism/wall-clock]", proc.stdout)

        # Without --with-retired the same fixture is clean: the determinism
        # rules now live in msn_analyze.
        default = subprocess.run(
            [sys.executable, str(tool), "--root", str(self.tree.root), "src"],
            capture_output=True, text=True)
        self.assertEqual(default.returncode, 0)

        single = subprocess.run(
            [sys.executable, str(tool), "--root", str(self.tree.root),
             "--with-retired", "src/node/bad.cc"], capture_output=True, text=True)
        self.assertEqual(single.returncode, 1)

        missing = subprocess.run(
            [sys.executable, str(tool), "--root", str(self.tree.root), "nope/"],
            capture_output=True, text=True)
        self.assertEqual(missing.returncode, 2)

    def test_list_rules_marks_retired(self):
        tool = REPO_ROOT / "tools" / "msn_lint.py"
        proc = subprocess.run([sys.executable, str(tool), "--list-rules"],
                              capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0)
        for rule in msn_lint.RETIRED_RULES:
            line = next(l for l in proc.stdout.splitlines() if l.startswith(rule))
            self.assertIn("retired -> msn_analyze", line)

    # --- docstring DAG stays in sync with the table --------------------------

    def test_dag_text_matches_layer_rank_table(self):
        # LAYER_DAG_TEXT (used in the layering error message) must be exactly
        # LAYER_RANK rendered rank by rank.
        ranks = sorted(set(msn_lint.LAYER_RANK.values()))
        self.assertEqual(ranks, list(range(len(ranks))), "ranks must be dense")
        groups = [{l for l, r in msn_lint.LAYER_RANK.items() if r == rank}
                  for rank in ranks]
        parsed = [set(part.split(",")) for part in
                  msn_lint.LAYER_DAG_TEXT.split(" -> ")]
        self.assertEqual(parsed, groups)

    def test_docstring_dag_matches_layer_rank_table(self):
        # The module docstring wraps the DAG across lines; normalize
        # whitespace and require the canonical text verbatim.
        flat = " ".join(msn_lint.__doc__.split())
        self.assertIn(msn_lint.LAYER_DAG_TEXT, flat,
                      "msn_lint.py's docstring DAG drifted from LAYER_RANK — "
                      "update the layering/upward-include description")

    def test_repo_src_is_clean(self):
        # The real tree must stay lint-clean (retired fallback rules
        # included); this is the same gate CI runs, plus some.
        self.assertEqual(run_lint(REPO_ROOT, ["src"], with_retired=True), [])


if __name__ == "__main__":
    unittest.main()
