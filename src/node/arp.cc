#include "src/node/arp.h"

#include <utility>

#include "src/link/net_device.h"
#include "src/node/ip_stack.h"
#include "src/util/logging.h"

namespace msn {

ArpService::ArpService(Simulator& sim, IpStack& stack) : sim_(sim), stack_(stack) {}

std::optional<MacAddress> ArpService::CachedLookup(Ipv4Address ip) const {
  auto it = cache_.find(ip);
  if (it == cache_.end() || it->second.expires < sim_.Now()) {
    return std::nullopt;
  }
  return it->second.mac;
}

void ArpService::InsertCacheEntry(Ipv4Address ip, MacAddress mac) {
  cache_[ip] = CacheEntry{mac, sim_.Now() + entry_lifetime_};
  ++counters_.cache_updates;
}

void ArpService::AddStaticEntry(Ipv4Address ip, MacAddress mac) {
  cache_[ip] = CacheEntry{mac, Time::Max()};
}

void ArpService::RemoveEntry(Ipv4Address ip) { cache_.erase(ip); }

void ArpService::AddProxyEntry(NetDevice* device, Ipv4Address ip) {
  proxies_[{device, ip}] = true;
}

void ArpService::RemoveProxyEntry(NetDevice* device, Ipv4Address ip) {
  proxies_.erase({device, ip});
}

bool ArpService::IsProxying(NetDevice* device, Ipv4Address ip) const {
  return proxies_.count({device, ip}) > 0;
}

void ArpService::Flush() { cache_.clear(); }

void ArpService::TransmitArp(NetDevice* device, const ArpMessage& msg, MacAddress dst) {
  EthernetFrame frame;
  frame.dst = dst;
  frame.src = device->mac();
  frame.ethertype = EtherType::kArp;
  frame.payload = msg.Serialize();
  device->Transmit(frame);
}

void ArpService::SendRequest(NetDevice* device, Ipv4Address ip) {
  ArpMessage req;
  req.op = ArpOp::kRequest;
  req.sender_mac = device->mac();
  req.sender_ip = stack_.GetInterfaceAddress(device).value_or(Ipv4Address::Any());
  req.target_mac = MacAddress::Zero();
  req.target_ip = ip;
  ++counters_.requests_sent;
  MSN_TRACE("arp", "%s: %s", stack_.node_name().c_str(), req.ToString().c_str());
  TransmitArp(device, req, MacAddress::Broadcast());
}

void ArpService::Resolve(NetDevice* device, Ipv4Address ip, ResolveCallback cb) {
  if (auto cached = CachedLookup(ip)) {
    cb(cached);
    return;
  }
  auto it = pending_.find(ip);
  if (it != pending_.end()) {
    it->second.callbacks.push_back(std::move(cb));
    return;
  }
  PendingResolution pending;
  pending.device = device;
  pending.attempts = 1;
  pending.callbacks.push_back(std::move(cb));
  pending.retry_event = sim_.Schedule(kRetryInterval, [this, ip] { RetryOrFail(ip); });
  pending_.emplace(ip, std::move(pending));
  SendRequest(device, ip);
}

void ArpService::RetryOrFail(Ipv4Address ip) {
  auto it = pending_.find(ip);
  if (it == pending_.end()) {
    return;
  }
  PendingResolution& pending = it->second;
  if (pending.attempts >= kMaxRetries) {
    ++counters_.resolutions_failed;
    MSN_DEBUG("arp", "%s: resolution of %s failed", stack_.node_name().c_str(),
              ip.ToString().c_str());
    auto callbacks = std::move(pending.callbacks);
    pending_.erase(it);
    for (auto& cb : callbacks) {
      cb(std::nullopt);
    }
    return;
  }
  ++pending.attempts;
  pending.retry_event = sim_.Schedule(kRetryInterval, [this, ip] { RetryOrFail(ip); });
  SendRequest(pending.device, ip);
}

void ArpService::HandleFrame(NetDevice* device, const EthernetFrame& frame) {
  auto msg = ArpMessage::Parse(frame.payload.span());
  if (!msg) {
    return;
  }
  const bool gratuitous = msg->sender_ip == msg->target_ip && !msg->sender_ip.IsAny();
  const auto our_addr = stack_.GetInterfaceAddress(device);
  const bool for_us = our_addr.has_value() && msg->target_ip == *our_addr;

  // Cache maintenance (RFC 826 merge rules): update an existing entry on any
  // ARP traffic from the sender; create a new one only when we are the
  // target. Gratuitous ARP therefore voids stale entries everywhere without
  // polluting uninvolved caches.
  if (!msg->sender_ip.IsAny()) {
    const bool have_entry = cache_.find(msg->sender_ip) != cache_.end();
    if (have_entry || for_us) {
      InsertCacheEntry(msg->sender_ip, msg->sender_mac);
    }
  }

  if (msg->op == ArpOp::kRequest && !gratuitous) {
    if (for_us) {
      ArpMessage reply;
      reply.op = ArpOp::kReply;
      reply.sender_mac = device->mac();
      reply.sender_ip = msg->target_ip;
      reply.target_mac = msg->sender_mac;
      reply.target_ip = msg->sender_ip;
      ++counters_.replies_sent;
      TransmitArp(device, reply, msg->sender_mac);
    } else if (IsProxying(device, msg->target_ip)) {
      // Proxy ARP: answer on behalf of the away-from-home mobile host with
      // our own MAC so its traffic lands here for tunneling.
      ArpMessage reply;
      reply.op = ArpOp::kReply;
      reply.sender_mac = device->mac();
      reply.sender_ip = msg->target_ip;
      reply.target_mac = msg->sender_mac;
      reply.target_ip = msg->sender_ip;
      ++counters_.proxy_replies_sent;
      MSN_DEBUG("arp", "%s: proxy reply for %s", stack_.node_name().c_str(),
                msg->target_ip.ToString().c_str());
      TransmitArp(device, reply, msg->sender_mac);
    }
    return;
  }

  // Replies (and gratuitous announcements) complete pending resolutions.
  auto it = pending_.find(msg->sender_ip);
  if (it != pending_.end()) {
    sim_.Cancel(it->second.retry_event);
    auto callbacks = std::move(it->second.callbacks);
    pending_.erase(it);
    InsertCacheEntry(msg->sender_ip, msg->sender_mac);
    for (auto& cb : callbacks) {
      cb(msg->sender_mac);
    }
  }
}

void ArpService::SendGratuitousArp(NetDevice* device, Ipv4Address ip) {
  ArpMessage announce;
  announce.op = ArpOp::kReply;
  announce.sender_mac = device->mac();
  announce.sender_ip = ip;
  announce.target_mac = MacAddress::Broadcast();
  announce.target_ip = ip;
  ++counters_.gratuitous_sent;
  MSN_DEBUG("arp", "%s: gratuitous ARP for %s", stack_.node_name().c_str(),
            ip.ToString().c_str());
  TransmitArp(device, announce, MacAddress::Broadcast());
}

void ArpService::AnnounceGratuitousArp(NetDevice* device, Ipv4Address ip) {
  SendGratuitousArp(device, ip);
  ScheduleGratuitousRepeat(device, ip, kGratuitousRepeats - 1);
}

void ArpService::ScheduleGratuitousRepeat(NetDevice* device, Ipv4Address ip,
                                          int remaining) {
  if (remaining <= 0) {
    return;
  }
  sim_.Schedule(kGratuitousSpacing, [this, device, ip, remaining] {
    if (!device->IsUp()) {
      return;
    }
    if (!IsProxying(device, ip) && stack_.GetInterfaceAddress(device) != ip) {
      return;  // No longer ours to announce.
    }
    SendGratuitousArp(device, ip);
    ScheduleGratuitousRepeat(device, ip, remaining - 1);
  });
}

}  // namespace msn
