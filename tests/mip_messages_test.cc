// Unit tests for the mobile-IP registration message formats and the Mobile
// Policy Table.
#include <gtest/gtest.h>

#include "src/mip/messages.h"
#include "src/mip/policy_table.h"

namespace msn {
namespace {

// --- Registration messages ---------------------------------------------------------

TEST(RegistrationRequestTest, RoundTrip) {
  RegistrationRequest req;
  req.flags = kMipFlagDecapsulateSelf;
  req.lifetime_sec = 300;
  req.home_address = Ipv4Address(36, 135, 0, 10);
  req.home_agent = Ipv4Address(36, 135, 0, 1);
  req.care_of_address = Ipv4Address(36, 8, 0, 50);
  req.identification = 0x1122334455667788ull;

  auto bytes = req.Serialize();
  ASSERT_EQ(bytes.size(), RegistrationRequest::kSize);

  auto parsed = RegistrationRequest::Parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->flags, kMipFlagDecapsulateSelf);
  EXPECT_EQ(parsed->lifetime_sec, 300);
  EXPECT_EQ(parsed->home_address, req.home_address);
  EXPECT_EQ(parsed->home_agent, req.home_agent);
  EXPECT_EQ(parsed->care_of_address, req.care_of_address);
  EXPECT_EQ(parsed->identification, req.identification);
  EXPECT_FALSE(parsed->IsDeregistration());
}

TEST(RegistrationRequestTest, DeregistrationHasZeroLifetime) {
  RegistrationRequest req;
  req.lifetime_sec = 0;
  EXPECT_TRUE(req.IsDeregistration());
  EXPECT_NE(req.ToString().find("deregister"), std::string::npos);
}

TEST(RegistrationRequestTest, ParseRejectsWrongTypeAndTruncation) {
  RegistrationRequest req;
  auto bytes = req.Serialize();
  bytes[0] = 3;  // Reply type.
  EXPECT_FALSE(RegistrationRequest::Parse(bytes).has_value());
  bytes[0] = 1;
  bytes.resize(10);
  EXPECT_FALSE(RegistrationRequest::Parse(bytes).has_value());
}

TEST(RegistrationReplyTest, RoundTrip) {
  RegistrationReply reply;
  reply.code = MipReplyCode::kAccepted;
  reply.lifetime_sec = 120;
  reply.home_address = Ipv4Address(36, 135, 0, 10);
  reply.home_agent = Ipv4Address(36, 135, 0, 1);
  reply.identification = 42;

  auto bytes = reply.Serialize();
  ASSERT_EQ(bytes.size(), RegistrationReply::kSize);
  auto parsed = RegistrationReply::Parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->accepted());
  EXPECT_EQ(parsed->lifetime_sec, 120);
  EXPECT_EQ(parsed->identification, 42u);
}

TEST(RegistrationReplyTest, DenialCodes) {
  EXPECT_TRUE(MipReplyCodeAccepted(MipReplyCode::kAccepted));
  EXPECT_TRUE(MipReplyCodeAccepted(MipReplyCode::kAcceptedNoSimultaneous));
  EXPECT_FALSE(MipReplyCodeAccepted(MipReplyCode::kDeniedMalformed));
  EXPECT_FALSE(MipReplyCodeAccepted(MipReplyCode::kDeniedUnknownHomeAddress));
  EXPECT_FALSE(MipReplyCodeAccepted(MipReplyCode::kDeniedIdentificationMismatch));
  EXPECT_NE(std::string(MipReplyCodeName(MipReplyCode::kDeniedLifetimeTooLong)).find("lifetime"),
            std::string::npos);
}

TEST(RegistrationReplyTest, ParseRejectsWrongType) {
  RegistrationReply reply;
  auto bytes = reply.Serialize();
  bytes[0] = 1;
  EXPECT_FALSE(RegistrationReply::Parse(bytes).has_value());
}

// --- Mobile Policy Table --------------------------------------------------------------

TEST(PolicyTableTest, DefaultPolicyIsTunnel) {
  MobilePolicyTable table;
  EXPECT_EQ(table.Lookup(Ipv4Address(1, 2, 3, 4)), MobilePolicy::kTunnelHome);
  table.set_default_policy(MobilePolicy::kTriangle);
  EXPECT_EQ(table.Lookup(Ipv4Address(1, 2, 3, 4)), MobilePolicy::kTriangle);
}

TEST(PolicyTableTest, LongestPrefixMatch) {
  MobilePolicyTable table;
  table.Set(Subnet::MustParse("36.0.0.0/8"), MobilePolicy::kTriangle);
  table.Set(Subnet::MustParse("36.8.0.0/16"), MobilePolicy::kDirect);
  table.Set(Subnet::MustParse("36.8.0.20/32"), MobilePolicy::kEncapDirect);

  EXPECT_EQ(table.Lookup(Ipv4Address(36, 135, 0, 1)), MobilePolicy::kTriangle);
  EXPECT_EQ(table.Lookup(Ipv4Address(36, 8, 0, 1)), MobilePolicy::kDirect);
  EXPECT_EQ(table.Lookup(Ipv4Address(36, 8, 0, 20)), MobilePolicy::kEncapDirect);
  EXPECT_EQ(table.Lookup(Ipv4Address(99, 0, 0, 1)), MobilePolicy::kTunnelHome);
}

TEST(PolicyTableTest, SetReplacesExisting) {
  MobilePolicyTable table;
  table.Set(Subnet::MustParse("36.8.0.0/16"), MobilePolicy::kTriangle);
  table.Set(Subnet::MustParse("36.8.0.0/16"), MobilePolicy::kDirect, true);
  EXPECT_EQ(table.entries().size(), 1u);
  EXPECT_EQ(table.Lookup(Ipv4Address(36, 8, 0, 1)), MobilePolicy::kDirect);
  EXPECT_TRUE(table.entries()[0].verified);
}

TEST(PolicyTableTest, HitCounting) {
  MobilePolicyTable table;
  table.Set(Subnet::MustParse("36.8.0.0/16"), MobilePolicy::kTriangle);
  EXPECT_EQ(table.Lookup(Ipv4Address(36, 8, 0, 1)), MobilePolicy::kTriangle);
  EXPECT_EQ(table.Lookup(Ipv4Address(36, 8, 0, 2)), MobilePolicy::kTriangle);
  table.LookupConst(Ipv4Address(36, 8, 0, 3));  // Advisory: no hit.
  EXPECT_EQ(table.entries()[0].hits, 2u);
}

TEST(PolicyTableTest, RecordFallbackCachesTunnelHostRoute) {
  MobilePolicyTable table;
  table.set_default_policy(MobilePolicy::kTriangle);
  table.RecordFallback(Ipv4Address(36, 8, 0, 20));
  EXPECT_EQ(table.Lookup(Ipv4Address(36, 8, 0, 20)), MobilePolicy::kTunnelHome);
  EXPECT_EQ(table.Lookup(Ipv4Address(36, 8, 0, 21)), MobilePolicy::kTriangle);
  ASSERT_EQ(table.entries().size(), 1u);
  EXPECT_TRUE(table.entries()[0].verified);
}

TEST(PolicyTableTest, RemoveAndClear) {
  MobilePolicyTable table;
  table.Set(Subnet::MustParse("36.8.0.0/16"), MobilePolicy::kDirect);
  EXPECT_TRUE(table.Remove(Subnet::MustParse("36.8.0.0/16")));
  EXPECT_FALSE(table.Remove(Subnet::MustParse("36.8.0.0/16")));
  table.Set(Subnet::MustParse("1.0.0.0/8"), MobilePolicy::kDirect);
  table.Clear();
  EXPECT_TRUE(table.entries().empty());
}

TEST(PolicyTableTest, ToStringMentionsPolicies) {
  MobilePolicyTable table;
  table.Set(Subnet::MustParse("36.8.0.0/16"), MobilePolicy::kEncapDirect);
  const std::string s = table.ToString();
  EXPECT_NE(s.find("tunnel-home"), std::string::npos);   // Default.
  EXPECT_NE(s.find("encap-direct"), std::string::npos);
  EXPECT_NE(s.find("36.8.0.0/16"), std::string::npos);
}

TEST(PolicyTableTest, PolicyNames) {
  EXPECT_STREQ(MobilePolicyName(MobilePolicy::kTunnelHome), "tunnel-home");
  EXPECT_STREQ(MobilePolicyName(MobilePolicy::kTriangle), "triangle");
  EXPECT_STREQ(MobilePolicyName(MobilePolicy::kEncapDirect), "encap-direct");
  EXPECT_STREQ(MobilePolicyName(MobilePolicy::kDirect), "direct");
}

}  // namespace
}  // namespace msn
