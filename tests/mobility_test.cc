// Tests for the physical mobility subsystem (DESIGN.md §15): motion-model
// determinism, the trace text format, the distance -> quality mapping, and
// the driver closing the position -> quality -> handoff loop.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "src/fault/fault_injector.h"
#include "src/mip/movement_detector.h"
#include "src/mobility/campus_map.h"
#include "src/mobility/link_quality.h"
#include "src/mobility/mobility_driver.h"
#include "src/mobility/mobility_model.h"
#include "src/topo/testbed.h"

namespace msn {
namespace {

constexpr double kMapW = 400.0;
constexpr double kMapH = 200.0;

std::unique_ptr<RandomWaypointModel> MakeWaypoint(uint64_t seed) {
  RandomWaypointModel::Params params;
  params.min_speed_mps = 2.0;
  params.max_speed_mps = 8.0;
  params.max_pause = Seconds(1);
  return std::make_unique<RandomWaypointModel>(Vec2{kMapW, kMapH}, Vec2{50.0, 100.0}, params,
                                               Rng(seed).Fork("walk"));
}

// Serializes a model's path so byte comparison covers every sampled position.
std::string PathOf(MobilityModel& model) {
  return TraceReplayModel::Record(model, Seconds(30), Milliseconds(250)).ToText();
}

TEST(MobilityModelDeterminism, WaypointSameSeedSamePath) {
  auto a = MakeWaypoint(7);
  auto b = MakeWaypoint(7);
  auto c = MakeWaypoint(8);
  const std::string path_a = PathOf(*a);
  EXPECT_EQ(path_a, PathOf(*b));
  EXPECT_NE(path_a, PathOf(*c));  // A different seed takes a different walk.
}

TEST(MobilityModelDeterminism, GroupSameSeedSamePath) {
  GroupMobilityModel::Params gp;
  auto make = [&](uint64_t seed) {
    return GroupMobilityModel(Vec2{kMapW, kMapH}, MakeWaypoint(seed), gp,
                              Rng(seed).Fork("offset"));
  };
  GroupMobilityModel a = make(11);
  GroupMobilityModel b = make(11);
  GroupMobilityModel c = make(12);
  const std::string path_a = PathOf(a);
  EXPECT_EQ(path_a, PathOf(b));
  EXPECT_NE(path_a, PathOf(c));
}

TEST(MobilityModelDeterminism, GroupStaysNearReference) {
  GroupMobilityModel::Params gp;
  gp.max_offset_m = 25.0;
  auto reference = MakeWaypoint(3);
  auto shadow = MakeWaypoint(3);  // Same seed: retraces the reference's walk.
  GroupMobilityModel member(Vec2{kMapW, kMapH}, std::move(reference), gp, Rng(3).Fork("offset"));
  for (int i = 0; i < 200; ++i) {
    const Vec2 member_pos = member.Advance(Milliseconds(250));
    const Vec2 ref_pos = shadow->Advance(Milliseconds(250));
    // Clamping at the map edge can only pull the member toward the reference.
    EXPECT_LE(Distance(member_pos, ref_pos), gp.max_offset_m + 1e-9);
  }
}

TEST(TraceReplay, TextRoundTripIsFixedPoint) {
  auto walk = MakeWaypoint(21);
  TraceReplayModel recorded = TraceReplayModel::Record(*walk, Seconds(20), Milliseconds(500));
  const std::string text = recorded.ToText();
  std::string error;
  auto parsed = TraceReplayModel::Parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->ToText(), text);
  EXPECT_EQ(parsed->points().size(), recorded.points().size());
}

TEST(TraceReplay, RejectsMalformedText) {
  EXPECT_FALSE(TraceReplayModel::Parse("").has_value());
  EXPECT_FALSE(TraceReplayModel::Parse("msn-trace-v2\nend\n").has_value());
  EXPECT_FALSE(TraceReplayModel::Parse("msn-trace-v1\np 0 1\nend\n").has_value());
  std::string error;
  EXPECT_FALSE(
      TraceReplayModel::Parse("msn-trace-v1\np 5000 1 2\np 1000 3 4\nend\n", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(TraceReplay, InterpolatesBetweenPointsAndHoldsOutside) {
  TraceReplayModel trace({{Seconds(0), {0.0, 0.0}}, {Seconds(10), {100.0, 50.0}}});
  EXPECT_DOUBLE_EQ(trace.position().x, 0.0);
  Vec2 mid = trace.Advance(Seconds(5));
  EXPECT_NEAR(mid.x, 50.0, 1e-9);
  EXPECT_NEAR(mid.y, 25.0, 1e-9);
  Vec2 end = trace.Advance(Seconds(5));
  EXPECT_NEAR(end.x, 100.0, 1e-9);
  // Past the last point the position holds.
  Vec2 held = trace.Advance(Seconds(60));
  EXPECT_NEAR(held.x, 100.0, 1e-9);
  EXPECT_NEAR(held.y, 50.0, 1e-9);
}

TEST(LinkQuality, RssiStrictlyDecreasingWithDistance) {
  RadioParams params;
  double previous = RssiDbm(params, 0.0);
  for (double d = 2.0; d <= 300.0; d += 2.0) {
    const double rssi = RssiDbm(params, d);
    EXPECT_LT(rssi, previous) << "at distance " << d;
    previous = rssi;
  }
}

TEST(LinkQuality, LossMonotoneAndSaturating) {
  RadioParams params;  // range 120 m, good fraction 0.6 -> clean inside 72 m.
  double previous = -1.0;
  for (double d = 0.0; d <= 240.0; d += 1.0) {
    const double loss = LossAtDistance(params, d);
    EXPECT_GE(loss, previous) << "at distance " << d;
    EXPECT_GE(loss, 0.0);
    EXPECT_LE(loss, 1.0);
    previous = loss;
  }
  EXPECT_DOUBLE_EQ(LossAtDistance(params, 50.0), 0.0);   // Deep in the cell.
  EXPECT_DOUBLE_EQ(LossAtDistance(params, 150.0), 1.0);  // Beyond range.
}

TEST(LinkQuality, LatencyGrowsTowardCellEdge) {
  RadioParams params;
  EXPECT_EQ(LatencyAtDistance(params, 10.0).nanos(), 0);
  const Duration near_edge = LatencyAtDistance(params, 110.0);
  const Duration mid = LatencyAtDistance(params, 90.0);
  EXPECT_GT(near_edge.nanos(), mid.nanos());
  EXPECT_LE(near_edge.nanos(), params.edge_latency.nanos());
}

TEST(CampusMapLayout, CorridorAlternatesMediaAndClamps) {
  CampusMap map = CampusMap::Corridor(kMapW, kMapH, 4, 60.0, 120.0);
  ASSERT_EQ(map.base_stations().size(), 4u);
  EXPECT_EQ(map.base_stations()[0].medium, CellMedium::kWired);
  EXPECT_EQ(map.base_stations()[1].medium, CellMedium::kRadio);
  EXPECT_EQ(map.base_stations()[0].name, "wired0");
  EXPECT_EQ(map.base_stations()[1].name, "radio1");

  double d = 0.0;
  const BaseStation* nearest =
      map.Nearest(CellMedium::kRadio, map.base_stations()[1].position, &d);
  ASSERT_NE(nearest, nullptr);
  EXPECT_EQ(nearest->name, "radio1");
  EXPECT_DOUBLE_EQ(d, 0.0);

  const Vec2 clamped = map.Clamp({-5.0, 500.0});
  EXPECT_DOUBLE_EQ(clamped.x, 0.0);
  EXPECT_DOUBLE_EQ(clamped.y, kMapH);
}

// End-to-end: a host walking a recorded path from a wired drop zone into a
// radio cell hands off because of motion alone — no scripted faults, no
// scripted moves — and the mobility.* telemetry records the journey.
TEST(MobilityDriverIntegration, WalkAcrossCampusCausesEmergentHandoff) {
  TestbedConfig cfg;
  cfg.seed = 5;
  Testbed tb(cfg);
  FaultInjector inject_wired(tb.sim, *tb.net8, &tb.metrics);
  FaultInjector inject_radio(tb.sim, *tb.radio134, &tb.metrics);
  tb.StartMobileAtHome();
  tb.StartMobileOnWired(50);

  CampusMap map = CampusMap::Corridor(kMapW, kMapH, 4, 60.0, 120.0);
  const Vec2 wired_home = map.base_stations()[0].position;
  const Vec2 radio_cell = map.base_stations()[1].position;
  // Sit in the drop zone for 5 s, stroll to the radio cell over 15 s, stay.
  auto trace = std::make_unique<TraceReplayModel>(std::vector<TraceReplayModel::Point>{
      {Seconds(0), wired_home},
      {Seconds(5), wired_home},
      {Seconds(20), radio_cell},
      {Seconds(60), radio_cell},
  });

  MovementDetector::Config det_cfg;
  det_cfg.use_signal = true;
  det_cfg.min_residency = Seconds(3);
  det_cfg.metrics = &tb.metrics;
  MovementDetector detector(*tb.mobile, det_cfg);
  detector.AddCandidate({tb.WiredAttachment(50), /*preference=*/2});
  detector.AddCandidate({tb.WirelessAttachment(50), /*preference=*/1});

  MobilityDriver::Config drv_cfg;
  drv_cfg.detector = &detector;
  drv_cfg.metrics = &tb.metrics;
  MobilityDriver driver(*tb.mobile, std::move(map), std::move(trace), drv_cfg);
  driver.AddBinding(tb.WiredMobilityBinding(&inject_wired, 50));
  driver.AddBinding(tb.RadioMobilityBinding(&inject_radio, 50));
  driver.Start();
  detector.Start();

  tb.RunFor(Seconds(40));

  // The walk forced the host onto the radio, and it re-registered there.
  EXPECT_EQ(tb.mobile->attachment().device, tb.mh_radio);
  EXPECT_TRUE(tb.mobile->registered());
  EXPECT_GE(driver.counters().handoffs_signal + driver.counters().handoffs_coverage, 1u);

  // Telemetry: the driver ticked, tracked the position, and attributed
  // residency to cells of both media along the way.
  EXPECT_GT(tb.metrics.ReadValue("mobility.ticks").value_or(0.0), 100.0);
  EXPECT_NEAR(tb.metrics.ReadValue("mobility.pos_x_m").value_or(-1.0), radio_cell.x, 1.0);
  EXPECT_GT(tb.metrics.ReadValue("mobility.residency.wired0").value_or(0.0), 0.0);
  EXPECT_GT(tb.metrics.ReadValue("mobility.residency.radio1").value_or(0.0), 0.0);
  // The detector saw the driver's RSSI feed for both devices.
  EXPECT_TRUE(tb.metrics.ReadValue("mh.movedet.rssi_dbm.eth0").has_value());
  EXPECT_TRUE(tb.metrics.ReadValue("mh.movedet.rssi_dbm.strip0").has_value());
}

}  // namespace
}  // namespace msn
