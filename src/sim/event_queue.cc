#include "src/sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "src/util/assert.h"

namespace msn {

EventId EventQueue::Schedule(Time when, Callback cb) {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  const uint32_t gen = slots_[slot].gen;
  slots_[slot].cb = std::move(cb);
  const uint64_t seq = next_seq_++;
  heap_.push_back(Item{when, seq, slot, gen});
  std::push_heap(heap_.begin(), heap_.end(), After);
  ++live_count_;
  return EventId((static_cast<uint64_t>(gen) << 32) | (slot + 1));
}

bool EventQueue::Cancel(EventId id) {
  if (!id.valid()) {
    return false;
  }
  const uint32_t slot = static_cast<uint32_t>(id.handle_ & 0xffffffff) - 1;
  const uint32_t gen = static_cast<uint32_t>(id.handle_ >> 32);
  if (slot >= slots_.size() || slots_[slot].gen != gen) {
    return false;  // Already fired, already cancelled, or never existed.
  }
  ++slots_[slot].gen;
  slots_[slot].cb.Reset();
  free_slots_.push_back(slot);
  --live_count_;
  return true;
}

void EventQueue::PopHeapItem() {
  std::pop_heap(heap_.begin(), heap_.end(), After);
  heap_.pop_back();
}

void EventQueue::DropCancelledHead() {
  while (!heap_.empty() && TopIsTombstone()) {
    PopHeapItem();
  }
}

Time EventQueue::NextTime() const {
  // Tombstone at the top can hide a later live event; peel lazily. Logically
  // const: live events and their order are unchanged.
  auto* self = const_cast<EventQueue*>(this);
  self->DropCancelledHead();
  if (heap_.empty()) {
    return Time::Max();
  }
  return heap_.front().when;
}

EventQueue::Entry EventQueue::PopNext() {
  DropCancelledHead();
  MSN_ASSERT(!heap_.empty()) << "PopNext on an empty event queue";
  const uint32_t slot = heap_.front().slot;
  Entry entry{heap_.front().when, std::move(slots_[slot].cb)};
  PopHeapItem();
  ++slots_[slot].gen;
  free_slots_.push_back(slot);
  --live_count_;
  return entry;
}

}  // namespace msn
