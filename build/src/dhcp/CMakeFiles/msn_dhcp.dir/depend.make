# Empty dependencies file for msn_dhcp.
# This may be replaced when dependencies are built.
