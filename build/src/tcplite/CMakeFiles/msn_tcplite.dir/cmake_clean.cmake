file(REMOVE_RECURSE
  "CMakeFiles/msn_tcplite.dir/tcplite.cc.o"
  "CMakeFiles/msn_tcplite.dir/tcplite.cc.o.d"
  "libmsn_tcplite.a"
  "libmsn_tcplite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msn_tcplite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
